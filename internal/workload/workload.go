// Package workload generates the accounting workloads of the paper's
// evaluation (Section V): streams of asset-transfer transactions over a
// configurable number of applications with a controlled degree of
// contention.
//
// The contention knob reproduces the paper's four workload classes:
//
//   - 0%   (no contention): every transaction touches a fresh, disjoint
//     pair of accounts, so no block contains conflicting transactions.
//   - d%   (low/high contention): a d fraction of transactions operate on
//     a small hot account set, conflicting with each other.
//   - 100% (full contention): every transaction hits the hot set; the
//     block's dependency graph is a chain.
//
// Conflicts are placed either within one application (the paper's solid
// OXII lines) or across applications (the dashed OXII* lines): in
// cross-application mode consecutive conflicting transactions alternate
// applications while sharing the hot records, producing the
// "chain of transactions where consecutive transactions belong to
// different applications" of Figure 6(d).
package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"parblockchain/internal/contract"
	"parblockchain/internal/types"
)

// Config parameterizes a workload generator.
type Config struct {
	// Apps lists the applications transactions are spread over.
	Apps []types.AppID
	// Contention is the fraction of transactions in [0,1] that target the
	// hot account set.
	Contention float64
	// CrossApp places conflicting transactions on alternating
	// applications over shared hot records (the OXII* workloads). When
	// false, all conflicting transactions belong to Apps[0], so the
	// full-contention graph is a single chain inside one application.
	CrossApp bool
	// HotAccounts is the size of the hot set. 1 (the default) makes every
	// conflicting pair conflict with each other, the paper's chain shape.
	HotAccounts int
	// ColdAccountsPerApp is the size of each application's disjoint
	// account pool for non-conflicting traffic. Pairs are handed out
	// cyclically, so the pool must well exceed twice the block size to
	// keep a no-contention workload conflict-free within a block.
	// Defaults to 100000.
	ColdAccountsPerApp int
	// Amount is the per-transfer amount. Defaults to 1.
	Amount int64
	// InitialBalance is the genesis balance of every account. Defaults to
	// 1e12 so balance aborts never occur unless injected.
	InitialBalance int64
	// AbortFraction injects transactions drawn from an unfunded account,
	// which deterministically abort. Used by fault-injection tests.
	AbortFraction float64
	// Skew switches hot-key selection from round-robin cycling to a
	// Zipf(s=Skew) draw over the hot set, so low-numbered hot accounts
	// absorb most of the conflicting traffic — the access pattern a
	// tiered (larger-than-RAM) state store is built for. Must be 0
	// (round-robin, the exact stream of earlier versions) or > 1 (the
	// Zipf s parameter; larger is more skewed). The draw shares the
	// generator's seeded RNG, so skewed streams stay reproducible.
	Skew float64
	// Seed makes the stream reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.HotAccounts <= 0 {
		c.HotAccounts = 1
	}
	if c.ColdAccountsPerApp <= 0 {
		c.ColdAccountsPerApp = 100000
	}
	if c.Amount <= 0 {
		c.Amount = 1
	}
	if c.InitialBalance <= 0 {
		c.InitialBalance = 1_000_000_000_000
	}
	return c
}

// Generator produces a reproducible transaction stream. It is safe for
// concurrent use by many client goroutines.
type Generator struct {
	cfg Config

	mu       sync.Mutex
	rng      *rand.Rand
	zipf     *rand.Zipf // nil unless cfg.Skew > 1
	coldNext map[types.AppID]int
	appRR    int // round-robin cursor over apps for cold traffic
	hotRR    int // round-robin cursor over the hot set
	hotApp   int // round-robin cursor over apps for cross-app conflicts
	txSeq    uint64
}

// New returns a generator for the config. It panics on a Skew in (0,1]:
// the standard library's Zipf sampler is undefined there, and silently
// falling back to round-robin would misreport a benchmark as skewed.
func New(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		coldNext: make(map[types.AppID]int, len(cfg.Apps)),
	}
	if cfg.Skew != 0 {
		if cfg.Skew <= 1 {
			panic(fmt.Sprintf("workload: Skew must be 0 or > 1, got %v", cfg.Skew))
		}
		g.zipf = rand.NewZipf(g.rng, cfg.Skew, 1, uint64(cfg.HotAccounts-1))
	}
	return g
}

// Seed returns the deterministic RNG seed the generator was built with.
// Two generators with equal configs (and hence equal seeds) produce
// identical streams; tests use this to reproduce a failing trace from a
// logged seed.
func (g *Generator) Seed() int64 { return g.cfg.Seed }

// Trace deterministically materializes the next n transactions of the
// stream for one client, with ClientTS 1..n relative to the generator's
// current position. A fresh generator with the same config yields the
// same trace bit for bit, which is what the pipeline-equivalence and
// race suites replay across executor configurations.
func (g *Generator) Trace(client types.NodeID, n int) []*types.Transaction {
	out := make([]*types.Transaction, n)
	for i := range out {
		out[i] = g.Next(client, uint64(i+1))
	}
	return out
}

// HotKey returns the i-th hot account key for an application (or the
// shared cross-application key when CrossApp is set).
func (g *Generator) HotKey(app types.AppID, i int) types.Key {
	if g.cfg.CrossApp {
		return fmt.Sprintf("shared/hot%04d", i)
	}
	return fmt.Sprintf("%s/hot%04d", app, i)
}

// ColdKey returns the i-th cold account key of an application.
func (g *Generator) ColdKey(app types.AppID, i int) types.Key {
	return fmt.Sprintf("%s/acct%08d", app, i)
}

// poorKey is an account that is never funded; transfers from it abort.
func (g *Generator) poorKey(app types.AppID) types.Key {
	return fmt.Sprintf("%s/poor", app)
}

// Genesis returns the funded-account records to install in every node's
// state store before the run: all cold pools and the hot set.
func (g *Generator) Genesis() []types.KV {
	cfg := g.cfg
	out := make([]types.KV, 0, len(cfg.Apps)*cfg.ColdAccountsPerApp+cfg.HotAccounts)
	balance := contract.EncodeBalance(cfg.InitialBalance)
	for _, app := range cfg.Apps {
		for i := 0; i < cfg.ColdAccountsPerApp; i++ {
			out = append(out, types.KV{Key: g.ColdKey(app, i), Val: balance})
		}
	}
	if cfg.CrossApp {
		for i := 0; i < cfg.HotAccounts; i++ {
			out = append(out, types.KV{Key: g.HotKey("", i), Val: balance})
		}
	} else {
		for _, app := range cfg.Apps {
			for i := 0; i < cfg.HotAccounts; i++ {
				out = append(out, types.KV{Key: g.HotKey(app, i), Val: balance})
			}
		}
	}
	return out
}

// Next produces the next transaction for the given client. The returned
// transaction is unsigned; the client assigns SubmitUnixNano, ID and Sig
// before submission (see Finalize).
func (g *Generator) Next(client types.NodeID, clientTS uint64) *types.Transaction {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.txSeq++

	var app types.AppID
	var op types.Operation
	// One uniform draw partitioned into abort/hot/cold bands, so each
	// configured fraction is exact. (Two chained draws would make the hot
	// fraction (1-AbortFraction)·Contention — with fault injection on,
	// the generator silently undershot the configured contention.)
	d := g.rng.Float64()
	switch {
	case d < g.cfg.AbortFraction:
		app = g.nextColdApp()
		// Drawn from an unfunded account: aborts deterministically.
		op = contract.TransferOp(g.poorKey(app), g.nextColdKey(app), g.cfg.Amount)
	case d < g.cfg.AbortFraction+g.cfg.Contention:
		app, op = g.nextHotOp()
	default:
		app = g.nextColdApp()
		from := g.nextColdKey(app)
		to := g.nextColdKey(app)
		op = contract.TransferOp(from, to, g.cfg.Amount)
	}
	return &types.Transaction{
		App:      app,
		Client:   client,
		ClientTS: clientTS,
		Op:       op,
	}
}

// nextHotOp builds a conflicting transaction: a transfer from a hot
// account to a fresh cold account, so consecutive hot transactions form
// write-write/read-write chains on the hot record.
func (g *Generator) nextHotOp() (types.AppID, types.Operation) {
	var app types.AppID
	if g.cfg.CrossApp {
		app = g.cfg.Apps[g.hotApp%len(g.cfg.Apps)]
		g.hotApp++
	} else {
		app = g.cfg.Apps[0]
	}
	var idx int
	if g.zipf != nil {
		idx = int(g.zipf.Uint64())
	} else {
		idx = g.hotRR % g.cfg.HotAccounts
		g.hotRR++
	}
	hot := g.HotKey(app, idx)
	return app, contract.TransferOp(hot, g.nextColdKey(app), g.cfg.Amount)
}

func (g *Generator) nextColdApp() types.AppID {
	app := g.cfg.Apps[g.appRR%len(g.cfg.Apps)]
	g.appRR++
	return app
}

// nextColdKey hands out cold accounts cyclically so that concurrent
// transactions touch disjoint records until the pool wraps.
func (g *Generator) nextColdKey(app types.AppID) types.Key {
	i := g.coldNext[app]
	g.coldNext[app] = (i + 1) % g.cfg.ColdAccountsPerApp
	return g.ColdKey(app, i)
}

// Finalize stamps client-side metadata and signs the transaction: it sets
// SubmitUnixNano, derives the ID from the digest, and signs with the
// client's signer.
func Finalize(tx *types.Transaction, nowUnixNano int64, sign func(digest []byte) []byte) {
	// Canonicalize the declared access sets before anything commits to
	// the transaction's bytes: the digest (hence ID and signature) must
	// cover the same ordering the orderers' graph builders and the
	// ledger's Merkle commitment see, so no node ever needs to mutate a
	// signed transaction. Orderers drop non-canonical sets outright.
	tx.Op.Reads = types.NormalizeKeys(tx.Op.Reads)
	tx.Op.Writes = types.NormalizeKeys(tx.Op.Writes)
	tx.SubmitUnixNano = nowUnixNano
	digest := tx.Digest()
	tx.ID = types.TxID(digest.String()[:16] + "-" + string(tx.Client))
	tx.Sig = sign(digest[:])
}
