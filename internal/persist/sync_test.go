package persist

import (
	"bytes"
	"errors"
	"testing"

	"parblockchain/internal/types"
)

// These tests cover the state-sync serving surface: record range reads
// against the live WAL, the truncation floor, snapshot chunking and
// reassembly, and adopting a peer-served snapshot as the local recovery
// point.

// logChain logs n single-write blocks through g and syncs the WAL.
func logChain(t *testing.T, m *Manager, g *chainGen, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		delta := []types.KV{{Key: "k", Val: []byte{byte(g.num)}}}
		if err := m.LogBlock(g.next(delta)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestServeBlocksRangesAndBudget(t *testing.T) {
	dir := t.TempDir()
	m, rec := mustOpen(t, testConfig(dir))
	defer m.Close()
	g := newChainGen(rec)
	logChain(t, m, g, 6)

	floor, next := m.SyncStatus()
	if floor != 0 || next != 6 {
		t.Fatalf("SyncStatus = (%d, %d), want (0, 6)", floor, next)
	}

	// Full range: every record, in order, decodable, positionally right.
	recs, err := m.ServeBlocks(0, 1<<20)
	if err != nil || len(recs) != 6 {
		t.Fatalf("ServeBlocks(0) = %d records, %v", len(recs), err)
	}
	for i, raw := range recs {
		dec, err := UnmarshalBlockRecord(raw)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if dec.Block.Header.Number != uint64(i) {
			t.Fatalf("record %d carries block %d", i, dec.Block.Header.Number)
		}
	}

	// Mid-range start.
	recs, err = m.ServeBlocks(4, 1<<20)
	if err != nil || len(recs) != 2 {
		t.Fatalf("ServeBlocks(4) = %d records, %v", len(recs), err)
	}
	if dec, _ := UnmarshalBlockRecord(recs[0]); dec.Block.Header.Number != 4 {
		t.Fatalf("ServeBlocks(4) starts at block %d", dec.Block.Header.Number)
	}

	// At the tip: empty batch, no error.
	if recs, err = m.ServeBlocks(6, 1<<20); err != nil || recs != nil {
		t.Fatalf("ServeBlocks(tip) = %d records, %v", len(recs), err)
	}

	// A one-byte budget still yields exactly one record, so an oversized
	// record cannot wedge a transfer.
	if recs, err = m.ServeBlocks(0, 1); err != nil || len(recs) != 1 {
		t.Fatalf("ServeBlocks(0, 1) = %d records, %v", len(recs), err)
	}
}

func TestServeBlocksBelowFloor(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.SnapshotInterval = 2
	cfg.SegmentBytes = 1 // roll per record: maximal truncation
	m, rec := mustOpen(t, cfg)
	defer m.Close()
	g := newChainGen(rec)
	for i := 0; i < 8; i++ {
		logChain(t, m, g, 1)
		m.MaybeSnapshot(g.num, g.prev, g.store)
		m.snapWG.Wait() // snapshots write in the background; settle each
	}

	floor, next := m.SyncStatus()
	if floor == 0 || next != 8 {
		t.Fatalf("SyncStatus = (%d, %d), want truncated floor and tip 8", floor, next)
	}
	if _, err := m.ServeBlocks(0, 1<<20); !errors.Is(err, ErrSyncBelowFloor) {
		t.Fatalf("ServeBlocks below floor = %v, want ErrSyncBelowFloor", err)
	}
	// The floor itself is still servable.
	recs, err := m.ServeBlocks(floor, 1<<20)
	if err != nil || len(recs) == 0 {
		t.Fatalf("ServeBlocks(floor) = %d records, %v", len(recs), err)
	}
	if h, ok := m.NewestSnapshot(); !ok || h == 0 {
		t.Fatalf("NewestSnapshot = (%d, %v) after truncation", h, ok)
	}
}

func TestSnapshotChunkReassemblyAndAdopt(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.SnapshotInterval = 2
	m, rec := mustOpen(t, cfg)
	defer m.Close()
	g := newChainGen(rec)
	for i := 0; i < 6; i++ {
		logChain(t, m, g, 1)
		m.MaybeSnapshot(g.num, g.prev, g.store)
		m.snapWG.Wait() // snapshots write in the background; settle each
	}
	height, ok := m.NewestSnapshot()
	if !ok || height == 0 {
		t.Fatalf("NewestSnapshot = (%d, %v)", height, ok)
	}

	// Reassemble from deliberately tiny chunks and verify the whole.
	first, total, err := m.ServeSnapshotChunk(height, 0, 64)
	if err != nil || total == 0 {
		t.Fatalf("chunk 0: %v (total %d)", err, total)
	}
	image := append([]byte(nil), first...)
	for c := uint64(1); c < total; c++ {
		part, gotTotal, err := m.ServeSnapshotChunk(height, c, 64)
		if err != nil || gotTotal != total {
			t.Fatalf("chunk %d: %v (total %d vs %d)", c, err, gotTotal, total)
		}
		image = append(image, part...)
	}
	if _, _, err := m.ServeSnapshotChunk(height, total, 64); err == nil {
		t.Fatal("chunk past the end was served")
	}
	man, snapStore, err := DecodeSnapshot(image)
	if err != nil {
		t.Fatalf("reassembled image failed verification: %v", err)
	}
	if man.Height != height || snapStore.Hash() != man.StateHash {
		t.Fatalf("manifest (%d, %x) does not match image", man.Height, man.StateHash[:4])
	}

	// A tampered image must fail verification.
	bad := append([]byte(nil), image...)
	bad[len(bad)/2] ^= 0x01
	if _, _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("tampered snapshot image passed verification")
	}

	// Adopt the image into a second, fresh node: it becomes that node's
	// recovery point, and a reopen resumes from it.
	dir2 := t.TempDir()
	m2, _ := mustOpen(t, testConfig(dir2))
	if err := m2.AdoptSnapshot(man.Height, image); err != nil {
		t.Fatalf("AdoptSnapshot: %v", err)
	}
	if floor, next := m2.SyncStatus(); floor != man.Height || next != man.Height {
		t.Fatalf("after adoption SyncStatus = (%d, %d), want (%d, %d)",
			floor, next, man.Height, man.Height)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	m3, rec3, err := Open(testConfig(dir2), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if h := rec3.Store.Hash(); rec3.Ledger.Height() != man.Height || h != man.StateHash {
		t.Fatalf("reopen after adoption: height %d hash %x, want %d %x",
			rec3.Ledger.Height(), h[:4], man.Height, man.StateHash[:4])
	}
	if v, ok := rec3.Store.Get("k"); !ok || !bytes.Equal(v, []byte{byte(man.Height - 1)}) {
		t.Fatalf("adopted state lost the chain's writes: %v %v", v, ok)
	}
}
