package bench

import (
	"testing"
	"time"
)

// short returns minimal options for harness smoke tests.
func short(system System) Options {
	return Options{
		System:   system,
		Clients:  32,
		Warmup:   200 * time.Millisecond,
		Duration: 400 * time.Millisecond,
		ExecCost: 200 * time.Microsecond,
	}
}

func TestRunOXII(t *testing.T) {
	r, err := Run(short(SystemOXII))
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 || r.Committed == 0 {
		t.Fatalf("no throughput measured: %+v", r)
	}
	if r.Errors != 0 {
		t.Fatalf("operations failed: %+v", r)
	}
	if r.AvgLatency <= 0 {
		t.Fatal("latency not recorded")
	}
}

func TestRunOX(t *testing.T) {
	r, err := Run(short(SystemOX))
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 || r.Errors != 0 {
		t.Fatalf("bad result: %+v", r)
	}
}

func TestRunXOV(t *testing.T) {
	r, err := Run(short(SystemXOV))
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 || r.Errors != 0 {
		t.Fatalf("bad result: %+v", r)
	}
}

func TestRunOXIIStarRecordsCrossAppTraffic(t *testing.T) {
	opts := short(SystemOXIIX)
	opts.Contention = 0.5
	r, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 || r.Errors != 0 {
		t.Fatalf("bad result: %+v", r)
	}
	if r.CommitMsgs == 0 {
		t.Fatal("cross-app contention must produce COMMIT multicasts")
	}
}

func TestRunRejectsUnknownSystem(t *testing.T) {
	if _, err := Run(Options{System: "nope"}); err == nil {
		t.Fatal("unknown system must error")
	}
}

func TestXOVContentionProducesAbortsOrRetries(t *testing.T) {
	opts := short(SystemXOV)
	opts.Contention = 0.8
	opts.Duration = 600 * time.Millisecond
	r, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Retries == 0 {
		t.Logf("no MVCC retries observed (timing-dependent): %+v", r)
	}
}

func TestGeoPlacementRaisesLatency(t *testing.T) {
	near := short(SystemOXII)
	near.Clients = 16
	far := near
	far.MoveGroup = GroupOrderers
	far.Warmup = 800 * time.Millisecond
	far.Duration = 800 * time.Millisecond
	rNear, err := Run(near)
	if err != nil {
		t.Fatal(err)
	}
	rFar, err := Run(far)
	if err != nil {
		t.Fatal(err)
	}
	// 85ms WAN hops must dominate sub-ms LAN latency.
	if rFar.AvgLatency < rNear.AvgLatency+50*time.Millisecond {
		t.Fatalf("WAN latency not visible: near=%v far=%v", rNear.AvgLatency, rFar.AvgLatency)
	}
}

func TestCurveAndPeak(t *testing.T) {
	points, err := Curve(short(SystemOXII), []int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	peak := Peak(points)
	if peak.Result.Throughput < points[0].Result.Throughput {
		t.Fatal("peak must be the max-throughput point")
	}
}

func TestGeoSweepSkipsOXForExecutorPlacements(t *testing.T) {
	base := short(SystemOXII)
	base.Duration = 300 * time.Millisecond
	series, err := GeoSweep(base, GroupExecutors,
		[]System{SystemOX, SystemOXII}, []int{8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if s.System == SystemOX {
			t.Fatal("OX must be skipped for executor placements")
		}
	}
	if len(series) != 1 {
		t.Fatalf("series = %d, want 1", len(series))
	}
}

func TestRunOXIISpeculative(t *testing.T) {
	opts := short(SystemOXIIX)
	opts.Contention = 0.5
	opts.AgentsPerApp = 2
	opts.Tau = 2
	opts.Speculate = true
	opts.VoteDelay = time.Millisecond
	opts.Duration = 600 * time.Millisecond
	r, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 || r.Errors != 0 {
		t.Fatalf("bad speculative result: %+v", r)
	}
	if r.SpecExecuted == 0 {
		t.Fatalf("cross-app contention with delayed votes produced no speculative executions: %+v", r)
	}
	if r.SpecMisses != 0 || r.SpecReexecs != 0 {
		t.Fatalf("honest run produced speculation misses: %+v", r)
	}
	// Speculation off: the counters must stay untouched.
	opts.Speculate = false
	r2, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r2.SpecExecuted != 0 || r2.SpecHits != 0 {
		t.Fatalf("non-speculative run reported speculation activity: %+v", r2)
	}
}

// TestSpeculationSweepSmoke exercises the SpeculationSweep harness end to
// end (one delay, off and on) so the sweep stays wired; CI's bench-smoke
// job runs it alongside the benchmarks.
func TestSpeculationSweepSmoke(t *testing.T) {
	base := short(SystemOXIIX)
	base.Duration = 400 * time.Millisecond
	series, err := SpeculationSweep(base, 0.5, []time.Duration{time.Millisecond}, []int{32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2 (off and on)", len(series))
	}
	if series[0].Speculate || !series[1].Speculate {
		t.Fatal("sweep must emit the off series before the on series per delay")
	}
	for _, s := range series {
		if len(s.Points) != 1 || s.Points[0].Result.Throughput <= 0 {
			t.Fatalf("bad sweep point: %+v", s)
		}
	}
}

func TestRunOXIIDurable(t *testing.T) {
	opts := short(SystemOXII)
	opts.DataDir = t.TempDir()
	opts.PipelineDepth = 4
	r, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 || r.Errors != 0 {
		t.Fatalf("bad durable result: %+v", r)
	}
	if r.WALAppends == 0 {
		t.Fatal("durable run logged no WAL records")
	}
	if r.WALSyncs == 0 || r.WALSyncs > r.WALAppends {
		t.Fatalf("group-commit accounting broken: %d syncs for %d appends",
			r.WALSyncs, r.WALAppends)
	}
	// In-memory runs must not report durability counters.
	r2, err := Run(short(SystemOXII))
	if err != nil {
		t.Fatal(err)
	}
	if r2.WALAppends != 0 || r2.WALSyncs != 0 {
		t.Fatalf("in-memory run reported WAL activity: %+v", r2)
	}
}

// TestRunOXIITiered pins the harness's tiered-backend path: a hot cap
// far below the workload's account set must force evictions and leave
// cold-resident keys, the Zipf-skewed stream must still commit
// error-free, and a memory-backend run must report no tiered counters.
func TestRunOXIITiered(t *testing.T) {
	opts := short(SystemOXII)
	opts.StateBackend = "tiered"
	opts.HotTierBytes = 1 << 10
	opts.ZipfSkew = 1.5
	r, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 || r.Errors != 0 {
		t.Fatalf("bad tiered result: %+v", r)
	}
	if r.Evictions == 0 || r.ColdKeys == 0 {
		t.Fatalf("tiered run never spilled to the cold tier: evictions=%d coldKeys=%d",
			r.Evictions, r.ColdKeys)
	}
	r2, err := Run(short(SystemOXII))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Evictions != 0 || r2.ColdReads != 0 || r2.ColdKeys != 0 {
		t.Fatalf("in-memory run reported tiered activity: %+v", r2)
	}
}

func TestTieredSweepSmoke(t *testing.T) {
	base := short(SystemOXII)
	series, err := TieredSweep(base, 0.5, 1<<10, []int{32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Backend != "memory" || series[1].Backend != "tiered" {
		t.Fatalf("sweep must emit the memory series then the tiered series: %+v", series)
	}
	for _, s := range series {
		if len(s.Points) != 1 || s.Points[0].Result.Throughput <= 0 {
			t.Fatalf("bad sweep point: %+v", s)
		}
	}
	if series[1].Points[0].Result.Evictions == 0 {
		t.Fatal("tiered sweep point recorded no evictions")
	}
}
