package state

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"parblockchain/internal/types"
)

// tieredOracle drives identical operation streams into a KVStore and a
// TieredStore and asserts the observable state (hash, len, contents)
// never diverges — the bit-identical-across-backends contract every
// equivalence suite builds on, checked at the state layer first.

func newTestTiered(t *testing.T, hotBytes int64) *TieredStore {
	t.Helper()
	ts, err := NewTieredStore(TieredConfig{
		Dir:          t.TempDir(),
		HotBytes:     hotBytes,
		SegmentBytes: 8 << 10, // tiny segments so tests exercise rolls
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	return ts
}

func randVal(rng *rand.Rand) []byte {
	v := make([]byte, rng.Intn(200))
	rng.Read(v)
	return v
}

func TestTieredMatchesKVStore(t *testing.T) {
	for _, hotBytes := range []int64{4 << 10, 1 << 30} {
		t.Run(fmt.Sprintf("hot=%d", hotBytes), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(hotBytes)))
			mem := NewKVStore()
			ts := newTestTiered(t, hotBytes)
			key := func() types.Key {
				return types.Key(fmt.Sprintf("acct%04d", rng.Intn(300)))
			}
			for batch := 0; batch < 60; batch++ {
				n := 1 + rng.Intn(40)
				writes := make([]types.KV, 0, n)
				for i := 0; i < n; i++ {
					kv := types.KV{Key: key()}
					switch rng.Intn(10) {
					case 0: // deletion
					case 1:
						kv.Val = []byte{} // present but empty
					default:
						kv.Val = randVal(rng)
					}
					writes = append(writes, kv)
				}
				// Neither store mutates values, so sharing slices is safe.
				mem.Apply(writes)
				ts.Apply(writes)
				if got, want := ts.Hash(), mem.Hash(); got != want {
					t.Fatalf("batch %d: hash diverged: tiered %s, mem %s", batch, got, want)
				}
				// Spot-check reads, including through the cold tier.
				for i := 0; i < 20; i++ {
					k := key()
					mv, mok := mem.Get(k)
					tv, tok := ts.Get(k)
					if mok != tok || !bytes.Equal(mv, tv) {
						t.Fatalf("batch %d: Get(%q) = (%q,%v), mem (%q,%v)",
							batch, k, tv, tok, mv, mok)
					}
					if mok && (mv == nil) != (tv == nil) {
						t.Fatalf("batch %d: Get(%q) nil-ness diverged", batch, k)
					}
				}
			}
			if mem.Len() != ts.Len() {
				t.Fatalf("len diverged: tiered %d, mem %d", ts.Len(), mem.Len())
			}
			ms, tss := mem.Snapshot(), ts.Snapshot()
			if len(ms) != len(tss) {
				t.Fatalf("snapshot sizes diverged: tiered %d, mem %d", len(tss), len(ms))
			}
			for k, v := range ms {
				if tv, ok := tss[k]; !ok || !bytes.Equal(v, tv) {
					t.Fatalf("snapshot diverged at %q", k)
				}
			}
			if hotBytes == 4<<10 {
				if st := ts.Stats(); st.Evictions == 0 || st.ColdReads == 0 {
					t.Fatalf("tiny budget forced no tier traffic: %+v", st)
				}
			}
		})
	}
}

func TestTieredPromotion(t *testing.T) {
	// Budget sized so single entries fit per shard (promotion possible)
	// but the full working set does not (eviction forced).
	ts := newTestTiered(t, 64<<10)
	var writes []types.KV
	for i := 0; i < 2000; i++ {
		writes = append(writes, types.KV{
			Key: types.Key(fmt.Sprintf("k%03d", i)),
			Val: []byte(fmt.Sprintf("v%03d", i)),
		})
	}
	ts.Apply(writes)
	if ts.Stats().Evictions == 0 {
		t.Fatal("expected evictions under a 64KiB budget")
	}
	// Find a cold key, read it (promoting), then read it again hot.
	var coldKey types.Key
	var coldLen int
	for _, kv := range writes {
		sh := &ts.shards[shardIndex(kv.Key)]
		sh.mu.RLock()
		_, hot := sh.hot[kv.Key]
		sh.mu.RUnlock()
		if !hot {
			coldKey, coldLen = kv.Key, len(kv.Val)
			break
		}
	}
	if coldKey == "" {
		t.Fatal("no cold key found")
	}
	before := ts.Stats().ColdReads
	n, cold, ok := ts.Warm(coldKey)
	if !ok || !cold || n != coldLen {
		t.Fatalf("Warm(%q) = (%d,%v,%v), want cold hit of %d bytes", coldKey, n, cold, ok, coldLen)
	}
	if got := ts.Stats().ColdReads; got != before+1 {
		t.Fatalf("cold reads = %d, want %d", got, before+1)
	}
	if _, cold, ok = ts.Warm(coldKey); !ok || cold {
		t.Fatalf("second Warm(%q) still cold", coldKey)
	}
	if got := ts.Stats().ColdReads; got != before+1 {
		t.Fatalf("promotion did not stick: cold reads = %d", got)
	}
}

func TestTieredCaptureReopen(t *testing.T) {
	dir := t.TempDir()
	ts, err := NewTieredStore(TieredConfig{Dir: dir, HotBytes: 2 << 10, SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var writes []types.KV
	for i := 0; i < 400; i++ {
		writes = append(writes, types.KV{
			Key: types.Key(fmt.Sprintf("acct%04d", i)),
			Val: randVal(rng),
		})
	}
	ts.Apply(writes)
	// Overwrite some, delete some (including keys already flushed cold,
	// exercising tombstones).
	for i := 0; i < 400; i += 3 {
		ts.Put(types.Key(fmt.Sprintf("acct%04d", i)), randVal(rng))
	}
	for i := 0; i < 400; i += 7 {
		ts.Put(types.Key(fmt.Sprintf("acct%04d", i)), nil)
	}
	snap := ts.CaptureSnapshot()
	wantSnap := ts.Snapshot()
	// Writes after the capture must be invisible to a reopen from it.
	ts.Apply([]types.KV{{Key: "post-capture", Val: []byte("x")}})
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenTieredStore(TieredConfig{Dir: dir, HotBytes: 2 << 10, SegmentBytes: 8 << 10},
		snap.Segments)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, kvs := range snap.Dirty {
		re.Apply(kvs)
	}
	if got := re.Hash(); got != snap.Hash {
		t.Fatalf("reopened hash %s, capture said %s", got, snap.Hash)
	}
	if got := uint64(re.Len()); got != snap.Records {
		t.Fatalf("reopened %d records, capture said %d", re.Len(), snap.Records)
	}
	reSnap := re.Snapshot()
	if len(reSnap) != len(wantSnap) {
		t.Fatalf("reopened %d keys, want %d", len(reSnap), len(wantSnap))
	}
	for k, v := range wantSnap {
		if rv, ok := reSnap[k]; !ok || !bytes.Equal(v, rv) {
			t.Fatalf("reopened contents diverged at %q", k)
		}
	}
	if _, ok := re.Get("post-capture"); ok {
		t.Fatal("post-capture write survived the truncating reopen")
	}
}

func TestTieredReset(t *testing.T) {
	ts := newTestTiered(t, 2<<10)
	for i := 0; i < 300; i++ {
		ts.Put(types.Key(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	empty := NewKVStore()
	ts.Reset()
	if ts.Len() != 0 || ts.Hash() != empty.Hash() {
		t.Fatalf("reset left %d records, hash %s", ts.Len(), ts.Hash())
	}
	ts.Put("after", []byte("reset"))
	if v, ok := ts.Get("after"); !ok || string(v) != "reset" {
		t.Fatal("store unusable after reset")
	}
}

func FuzzDecodeColdRecord(f *testing.F) {
	f.Add(marshalColdRecord(&coldRecord{key: "acct0001", ver: 3, val: []byte("100")}))
	f.Add(marshalColdRecord(&coldRecord{key: "gone", tomb: true}))
	f.Add(marshalColdRecord(&coldRecord{key: "", ver: 1, val: []byte{}}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeColdRecord(data)
		if err != nil {
			return
		}
		enc := marshalColdRecord(&rec)
		rec2, err := decodeColdRecord(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if !bytes.Equal(enc, marshalColdRecord(&rec2)) {
			t.Fatal("cold record encoding is not a fixed point")
		}
	})
}
