package core

import (
	"testing"
	"time"

	"parblockchain/internal/contract"
	"parblockchain/internal/transport"
	"parblockchain/internal/types"
)

// TestFacadeQuickstart exercises the documented public API path end to
// end: build, start, transact, inspect.
func TestFacadeQuickstart(t *testing.T) {
	net := transport.NewInMemNetwork(transport.InMemConfig{})
	defer net.Close()
	bc, err := NewParBlockchain(Config{
		Orderers:  []types.NodeID{"o1"},
		Executors: []types.NodeID{"e1"},
		Clients:   []types.NodeID{"c1"},
		Agents:    map[types.AppID][]types.NodeID{"pay": {"e1"}},
		Contracts: map[types.AppID]contract.Contract{"pay": contract.NewAccounting()},
		Genesis:   []types.KV{{Key: "a", Val: contract.EncodeBalance(100)}},
		Net:       net,
	})
	if err != nil {
		t.Fatal(err)
	}
	bc.Start()
	defer bc.Stop()
	client, err := bc.Client("c1")
	if err != nil {
		t.Fatal(err)
	}
	result, err := client.Do(client.Prepare("pay", contract.TransferOp("a", "b", 40)), 5*time.Second)
	if err != nil || result.Aborted {
		t.Fatalf("result=%+v err=%v", result, err)
	}
	raw, _ := bc.ObserverStore().Get("b")
	if bal, _ := contract.Balance(raw); bal != 40 {
		t.Fatalf("b = %d", bal)
	}
}

func TestBuildGraphFacade(t *testing.T) {
	txns := []*types.Transaction{
		{App: "a", Op: contract.TransferOp("x", "y", 1)},
		{App: "a", Op: contract.TransferOp("y", "z", 1)},
		{App: "a", Op: contract.TransferOp("p", "q", 1)},
	}
	g := BuildGraph(txns, Standard)
	if g.N != 3 {
		t.Fatalf("N = %d", g.N)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("conflicting transfers must be ordered")
	}
	if len(g.Pred[2]) != 0 {
		t.Fatal("independent transfer must be unordered")
	}
	// MultiVersion still orders 0->1 (tx0 writes y, tx1 reads y).
	if g := BuildGraph(txns, MultiVersion); !g.HasEdge(0, 1) {
		t.Fatal("write-then-read must be ordered under MVCC")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewParBlockchain(Config{}); err == nil {
		t.Fatal("missing transport must be rejected")
	}
	net := transport.NewInMemNetwork(transport.InMemConfig{})
	defer net.Close()
	_, err := NewParBlockchain(Config{
		Orderers:  []types.NodeID{"o1"},
		Executors: []types.NodeID{"e1"},
		Agents:    map[types.AppID][]types.NodeID{"pay": {"e1"}},
		// No contract for "pay": must be rejected.
		Net: net,
	})
	if err == nil {
		t.Fatal("missing contract must be rejected")
	}
	_, err = NewParBlockchain(Config{
		Orderers:  []types.NodeID{"o1"},
		Executors: []types.NodeID{"e1"},
		Agents:    map[types.AppID][]types.NodeID{"pay": {}},
		Contracts: map[types.AppID]contract.Contract{"pay": contract.NewAccounting()},
		Net:       net,
	})
	if err == nil {
		t.Fatal("empty agent set must be rejected")
	}
}
