package depgraph

import (
	"fmt"
	"math/rand"
	"testing"
)

// bruteHeights computes longest-downstream-path heights and out-degrees
// over an arbitrary DAG given as predecessor lists per node, by plain
// fixpoint iteration — the reference the incremental tracker is checked
// against.
func bruteHeights(preds [][]int) (heights, outDeg []int) {
	n := len(preds)
	heights = make([]int, n)
	outDeg = make([]int, n)
	for j := range preds {
		for _, p := range preds[j] {
			outDeg[p]++
		}
	}
	for changed := true; changed; {
		changed = false
		for j := range preds {
			for _, p := range preds[j] {
				if heights[j]+1 > heights[p] {
					heights[p] = heights[j] + 1
					changed = true
				}
			}
		}
	}
	return heights, outDeg
}

func TestGraphHeightsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		pred := make([][]int32, n)
		succ := make([][]int32, n)
		flat := make([][]int, n)
		for j := 1; j < n; j++ {
			for p := 0; p < j; p++ {
				if rng.Float64() < 0.15 {
					pred[j] = append(pred[j], int32(p))
					succ[p] = append(succ[p], int32(j))
					flat[j] = append(flat[j], p)
				}
			}
		}
		g := &Graph{N: n, Pred: pred, Succ: succ}
		want, _ := bruteHeights(flat)
		got := g.Heights()
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d node %d: Heights() = %d, brute force = %d", trial, j, got[j], want[j])
			}
		}
	}
}

func TestGraphHeightsShapes(t *testing.T) {
	// A chain 0 -> 1 -> 2 -> 3: heights are 3,2,1,0.
	chain := &Graph{
		N:    4,
		Pred: [][]int32{nil, {0}, {1}, {2}},
		Succ: [][]int32{{1}, {2}, {3}, nil},
	}
	for j, want := range []int{3, 2, 1, 0} {
		if got := chain.Heights()[j]; got != want {
			t.Fatalf("chain node %d: height %d, want %d", j, got, want)
		}
	}
	// An independent block: every height 0.
	flat := &Graph{N: 3, Pred: make([][]int32, 3), Succ: make([][]int32, 3)}
	for j, h := range flat.Heights() {
		if h != 0 {
			t.Fatalf("independent node %d has height %d", j, h)
		}
	}
	if empty := (&Graph{}).Heights(); len(empty) != 0 {
		t.Fatalf("empty graph produced %d heights", len(empty))
	}
}

// windowModel accumulates the flattened multi-block DAG a test window
// produces, so tracker state can be compared against bruteHeights after
// every mutation.
type windowModel struct {
	refs  []TxRef
	preds [][]int // indices into refs
	index map[TxRef]int
}

func newWindowModel() *windowModel {
	return &windowModel{index: make(map[TxRef]int)}
}

func (m *windowModel) add(ref TxRef, preds []TxRef) {
	flat := make([]int, 0, len(preds))
	for _, p := range preds {
		if i, ok := m.index[p]; ok {
			flat = append(flat, i)
		}
	}
	m.index[ref] = len(m.refs)
	m.refs = append(m.refs, ref)
	m.preds = append(m.preds, flat)
}

func (m *windowModel) remove(block uint64) {
	// Dropping a block from the model: its nodes vanish along with every
	// edge touching them. Finalized blocks are always the earliest, so
	// no surviving node loses downstream height — which is exactly the
	// property the tracker relies on; the comparison would catch a
	// violation.
	keep := make([]int, 0, len(m.refs))
	for i, ref := range m.refs {
		if ref.Block != block {
			keep = append(keep, i)
		}
	}
	remap := make(map[int]int, len(keep))
	for newI, oldI := range keep {
		remap[oldI] = newI
	}
	refs := make([]TxRef, 0, len(keep))
	preds := make([][]int, 0, len(keep))
	index := make(map[TxRef]int, len(keep))
	for _, oldI := range keep {
		var ps []int
		for _, p := range m.preds[oldI] {
			if np, ok := remap[p]; ok {
				ps = append(ps, np)
			}
		}
		index[m.refs[oldI]] = len(refs)
		refs = append(refs, m.refs[oldI])
		preds = append(preds, ps)
	}
	m.refs, m.preds, m.index = refs, preds, index
}

func (m *windowModel) check(t *testing.T, tr *HeightTracker, when string) {
	t.Helper()
	heights, outDeg := bruteHeights(m.preds)
	for i, ref := range m.refs {
		if got := tr.Height(ref.Block, int(ref.Index)); int(got) != heights[i] {
			t.Fatalf("%s: height of block %d tx %d = %d, brute force = %d",
				when, ref.Block, ref.Index, got, heights[i])
		}
		if got := tr.OutDeg(ref.Block, int(ref.Index)); int(got) != outDeg[i] {
			t.Fatalf("%s: out-degree of block %d tx %d = %d, brute force = %d",
				when, ref.Block, ref.Index, got, outDeg[i])
		}
	}
}

// TestHeightTrackerIncrementalAgainstBruteForce drives the tracker the
// way the executor does — blocks admitted in order, transactions
// appended contiguously with intra-block predecessors plus stitched
// cross-block edges into every still-tracked earlier block, finalized
// blocks purged from the front — and after every append and removal
// compares every tracked height and out-degree against a brute-force
// longest-path recompute of the surviving window.
func TestHeightTrackerIncrementalAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		tr := NewHeightTracker()
		model := newWindowModel()
		var tracked []uint64
		sizes := make(map[uint64]int)
		nextBlock := uint64(trial * 100)
		for step := 0; step < 60; step++ {
			if len(tracked) > 0 && rng.Float64() < 0.2 {
				// Finalize the oldest block, as the executor's pump does.
				oldest := tracked[0]
				tracked = tracked[1:]
				tr.Remove(oldest)
				model.remove(oldest)
				delete(sizes, oldest)
				model.check(t, tr, fmt.Sprintf("trial %d step %d after Remove(%d)", trial, step, oldest))
				continue
			}
			if len(tracked) == 0 || rng.Float64() < 0.3 {
				tracked = append(tracked, nextBlock)
				nextBlock++
			}
			blk := tracked[len(tracked)-1] // only the newest block grows
			idx := sizes[blk]
			var intra []int32
			for p := 0; p < idx; p++ {
				if rng.Float64() < 0.2 {
					intra = append(intra, int32(p))
				}
			}
			var cross []TxRef
			for _, b := range tracked[:len(tracked)-1] {
				for p := 0; p < sizes[b]; p++ {
					if rng.Float64() < 0.1 {
						cross = append(cross, TxRef{Block: b, Index: int32(p)})
					}
				}
			}
			// Refs into long-finalized blocks must be tolerated and ignored.
			if rng.Float64() < 0.1 {
				cross = append(cross, TxRef{Block: 99999999, Index: 0})
			}
			tr.Append(blk, intra, cross)
			sizes[blk] = idx + 1
			ref := TxRef{Block: blk, Index: int32(idx)}
			live := cross[:0:0]
			for _, c := range cross {
				if _, ok := sizes[c.Block]; ok {
					live = append(live, c)
				}
			}
			for _, p := range intra {
				live = append(live, TxRef{Block: blk, Index: p})
			}
			model.add(ref, live)
			model.check(t, tr, fmt.Sprintf("trial %d step %d after Append(%d,%d)", trial, step, blk, idx))
		}
		if tr.Len() != len(tracked) {
			t.Fatalf("trial %d: tracker holds %d blocks, window has %d", trial, tr.Len(), len(tracked))
		}
	}
}

// TestHeightTrackerCrossBlockChain pins the executor-shaped scenario the
// scheduler cares about: a hot chain continued across blocks must give
// the earlier block's chain transactions heights that extend through
// the later blocks, while independent transactions stay at height 0.
func TestHeightTrackerCrossBlockChain(t *testing.T) {
	tr := NewHeightTracker()
	// Block 0: txs 0,1 form a chain; tx 2 independent.
	tr.Append(0, nil, nil)
	tr.Append(0, []int32{0}, nil)
	tr.Append(0, nil, nil)
	if h := tr.Height(0, 0); h != 1 {
		t.Fatalf("block 0 tx 0 height = %d, want 1", h)
	}
	// Block 1: tx 0 continues the chain from block 0 tx 1.
	tr.Append(1, nil, []TxRef{{Block: 0, Index: 1}})
	tr.Append(1, []int32{0}, nil)
	if h := tr.Height(0, 0); h != 3 {
		t.Fatalf("chain head height after stitch = %d, want 3", h)
	}
	if h := tr.Height(0, 2); h != 0 {
		t.Fatalf("independent tx height = %d, want 0", h)
	}
	if d := tr.OutDeg(0, 1); d != 1 {
		t.Fatalf("block 0 tx 1 out-degree = %d, want 1", d)
	}
	// Finalizing block 0 leaves block 1's heights untouched.
	tr.Remove(0)
	if h := tr.Height(1, 0); h != 1 {
		t.Fatalf("block 1 tx 0 height after purge = %d, want 1", h)
	}
	if h := tr.Height(0, 0); h != 0 {
		t.Fatalf("removed block still reports height %d", h)
	}
}

// TestHeightTrackerAppendReportsRaised pins the raised-entry report the
// executor's lazy priority refresh consumes: exactly the entries whose
// height an Append changed, across blocks, and nothing when the
// relaxation stops early.
func TestHeightTrackerAppendReportsRaised(t *testing.T) {
	asSet := func(refs []TxRef) map[TxRef]bool {
		s := make(map[TxRef]bool, len(refs))
		for _, r := range refs {
			s[r] = true
		}
		return s
	}
	tr := NewHeightTracker()
	if got := tr.Append(0, nil, nil); len(got) != 0 {
		t.Fatalf("independent append raised %v, want nothing", got)
	}
	// tx 1 depends on tx 0: the append raises exactly tx 0.
	got := asSet(tr.Append(0, []int32{0}, nil))
	if len(got) != 1 || !got[TxRef{Block: 0, Index: 0}] {
		t.Fatalf("chain append raised %v, want {0/0}", got)
	}
	// tx 2 also depends on tx 0: tx 0 is already at height 1, so the
	// relaxation stops without raising anything.
	if raised := tr.Append(0, []int32{0}, nil); len(raised) != 0 {
		t.Fatalf("redundant edge raised %v, want nothing", raised)
	}
	// Block 1 continues the chain below tx 1: the whole ancestor chain
	// (0/1 to height 1, then 0/0 to height 2) is reported, across blocks.
	got = asSet(tr.Append(1, nil, []TxRef{{Block: 0, Index: 1}}))
	want := map[TxRef]bool{{Block: 0, Index: 1}: true, {Block: 0, Index: 0}: true}
	if len(got) != len(want) {
		t.Fatalf("cross-block append raised %v, want %v", got, want)
	}
	for r := range want {
		if !got[r] {
			t.Fatalf("cross-block append raised %v, want %v", got, want)
		}
	}
	if h := tr.Height(0, 0); h != 2 {
		t.Fatalf("chain head height = %d, want 2", h)
	}
}
