package execution

import (
	"sync/atomic"
	"testing"
	"time"

	"parblockchain/internal/depgraph"
	"parblockchain/internal/types"
)

// This file pins the budget-accounting invariant behind the
// maxOrdererStreamBytes / maxCommitBytesPerSender flood bounds: every
// byte charged against a sender's budget must eventually be credited
// back, so once all buffers drain both per-sender maps are empty. A
// leaked charge would permanently shrink an honest sender's budget —
// a silent denial of service that compounds over the node's lifetime.
// The suite exercises every path that buffers charged content: segment
// streams feeding admission, streams broken mid-block, COMMIT messages
// buffered ahead of their block, and a state-sync rebase tearing down
// the whole window. Runs under -race in CI (a named gating step).

// assertBudgetsEmpty stops the executor and inspects the actor-owned
// budget maps (the quiescent-inspection pattern this package's flood
// tests established).
func assertBudgetsEmpty(t *testing.T, e *Executor, when string) {
	t.Helper()
	e.Stop()
	if len(e.streamBytes) != 0 {
		t.Fatalf("%s: streamBytes retains %d senders: %v", when, len(e.streamBytes), e.streamBytes)
	}
	if len(e.commitBytes) != 0 {
		t.Fatalf("%s: commitBytes retains %d senders: %v", when, len(e.commitBytes), e.commitBytes)
	}
}

// TestBudgetCreditedAfterStreamedDrain drives every in-protocol
// buffering path to quiescence in one run: o1 streams six blocks to
// finalization (stream bytes stay charged until each seal validates),
// o2's stream for block 0 breaks on a gap after a charged segment (the
// teardown credit), and a fake executor floods COMMITs for a mid-trace
// block before it exists (buffered and charged until replay credits
// them — every one is then rejected as unauthorized, which must not
// matter to the budget).
func TestBudgetCreditedAfterStreamedDrain(t *testing.T) {
	blocks, genesis := tracedBlocks(51, 0.4, 6, 20)
	r := newStreamRig(t, 4, genesis)

	e9, _ := r.net.Endpoint("e9")
	junk := &types.CommitMsg{
		BlockNum: 4,
		Results:  []types.TxResult{{TxID: "junk", Index: 0}},
		Executor: "e9",
	}
	for i := 0; i < 32; i++ {
		if err := e9.Send("e1", junk); err != nil {
			t.Fatal(err)
		}
	}

	// o2's stream for block 0: one charged segment, then a gap.
	o2, _ := r.net.Endpoint("o2")
	o2stream := cutStream(blocks, 2, "o2")
	if err := o2.Send("e1", o2stream[0].segs[0]); err != nil {
		t.Fatal(err)
	}
	if err := o2.Send("e1", o2stream[0].segs[2]); err != nil { // gap: breaks
		t.Fatal(err)
	}

	for _, sb := range cutStream(blocks, 16, "o1") {
		for _, seg := range sb.segs {
			r.send(t, seg)
		}
		r.send(t, sb.seal)
	}
	r.awaitBlocks(t, 6)
	assertBudgetsEmpty(t, r.exec, "after streamed drain")
}

// TestBudgetCreditedAfterMonolithicDrain is the plain-path control:
// COMMITs buffered ahead of monolithically announced blocks are
// credited when the chain passes their height.
func TestBudgetCreditedAfterMonolithicDrain(t *testing.T) {
	blocks, genesis := tracedBlocks(52, 0.4, 4, 12)
	r := newStreamRig(t, 4, genesis)
	e9, _ := r.net.Endpoint("e9")
	junk := &types.CommitMsg{
		BlockNum: 2,
		Results:  []types.TxResult{{TxID: "junk", Index: 0}},
		Executor: "e9",
	}
	for i := 0; i < 16; i++ {
		if err := e9.Send("e1", junk); err != nil {
			t.Fatal(err)
		}
	}
	var prev types.Hash
	for num, txns := range blocks {
		block := types.NewBlock(uint64(num), prev, txns)
		prev = block.Hash()
		sets := make([]depgraph.RWSet, len(txns))
		for i, tx := range txns {
			sets[i] = depgraph.RWSet{Reads: tx.Op.Reads, Writes: tx.Op.Writes}
			sets[i].Normalize()
		}
		r.send(t, &types.NewBlockMsg{
			Block:   block,
			Graph:   depgraph.Build(sets, depgraph.Standard),
			Apps:    block.Apps(),
			Orderer: "o1",
		})
	}
	r.awaitBlocks(t, 4)
	assertBudgetsEmpty(t, r.exec, "after monolithic drain")
}

// TestBudgetCreditedAfterStateSyncRebase covers the teardown path that
// never replays: charged buffers for blocks the node ends up adopting
// from a peer (a segment stream for a future block that never
// completes, COMMITs for blocks below the synced tip) must be credited
// when rebaseAfterSync discards the window.
func TestBudgetCreditedAfterStateSyncRebase(t *testing.T) {
	chain := buildSyncChain(6)
	rig := newSyncPeerRig(t, []types.NodeID{"honest"})
	var reqs atomic.Uint64
	ep := rig.servePeer(t, "honest", &reqs, func(req *types.StateSyncRequestMsg) *types.StateSyncResponseMsg {
		return chain.response(t, req, nil)
	})

	// Charged state the rebase must credit: a dangling segment stream
	// for block 2 and buffered COMMITs for block 3, both below the tip
	// the sync will land on. (The watchdog announcement below also
	// buffers one charged COMMIT from "honest" for block 5.)
	o9, _ := rig.net.Endpoint("o9")
	if err := o9.Send("req", chain.segmentFor(2, "o9")); err != nil {
		t.Fatal(err)
	}
	e9, _ := rig.net.Endpoint("e9")
	junk := &types.CommitMsg{
		BlockNum: 3,
		Results:  []types.TxResult{{TxID: "junk", Index: 0}},
		Executor: "e9",
	}
	for i := 0; i < 16; i++ {
		if err := e9.Send("req", junk); err != nil {
			t.Fatal(err)
		}
	}
	// Let the charges land before arming the watchdog. Cross-sender
	// delivery order is not guaranteed, but a charge that instead
	// arrives after the rebase is dropped below-height without being
	// charged — the invariant holds either way; the pause just makes the
	// run exercise the rebase-credit path it is written for.
	time.Sleep(100 * time.Millisecond)
	announce(t, ep, uint64(len(chain.records)-1))

	n := uint64(len(chain.records))
	waitFor(t, "sync convergence", func() bool { return rig.led.Height() == n })
	assertBudgetsEmpty(t, rig.exec, "after state-sync rebase")
	if got := rig.store.Hash(); got != chain.finalHash {
		t.Fatal("synced store hash diverged from the honest chain")
	}
}

// segmentFor cuts a valid first segment of one chain block, attributed
// to the given orderer — enough to charge the orderer's stream budget
// without ever completing the stream.
func (c *syncChain) segmentFor(num uint64, orderer types.NodeID) *types.BlockSegmentMsg {
	block := c.records[num].Block
	return &types.BlockSegmentMsg{
		BlockNum: num,
		Seg:      0,
		Start:    0,
		Txns:     block.Txns,
		Preds:    make([][]int32, len(block.Txns)),
		Orderer:  orderer,
	}
}
