package execution

import (
	"fmt"
	"sync/atomic"
	"time"

	"parblockchain/internal/state"
	"parblockchain/internal/telemetry"
)

// RegisterTelemetry exposes the executor's counters, gauges, and (when
// Config.Tracer is set) per-stage block-lifecycle histograms on reg. The
// labels are merged into every series (clusters use node="<id>").
//
// Everything registered here samples atomics, the mutex-protected
// ledger, or the scheduler's own lock — never actor-owned state — so a
// scrape is safe at any moment of a live pipeline.
func (e *Executor) RegisterTelemetry(reg *telemetry.Registry, labels telemetry.Labels) {
	if reg == nil {
		return
	}
	counter := func(name, help string, v *atomic.Uint64) {
		reg.CounterFunc(name, help, labels, v.Load)
	}
	counter("parblockchain_executor_tx_executed_total",
		"Transactions executed locally (including speculative attempts).", &e.stats.executed)
	counter("parblockchain_executor_tx_committed_total",
		"Transactions committed, including aborted ones.", &e.stats.committed)
	counter("parblockchain_executor_tx_aborted_total",
		"Transactions whose final result is an abort.", &e.stats.aborted)
	counter("parblockchain_executor_blocks_committed_total",
		"Blocks finalized and externalized.", &e.stats.blocks)
	counter("parblockchain_executor_commit_msgs_sent_total",
		"Outbound COMMIT multicasts (per destination set).", &e.stats.commitMsg)
	counter("parblockchain_executor_segments_admitted_total",
		"Block segments admitted into the window before their seal.", &e.stats.segsAdmitted)
	counter("parblockchain_executor_msgs_dropped_total",
		"Messages shed by the buffering bounds (horizon or per-sender budgets).", &e.stats.droppedFuture)
	counter("parblockchain_executor_prio_refreshes_total",
		"Queued work re-pushed at a fresher critical-path priority.", &e.stats.prioRefresh)

	spec := func(event string, v *atomic.Uint64) {
		reg.CounterFunc("parblockchain_executor_speculation_total",
			"Speculative execution events past the commit wait.",
			withLabels(labels, "event", event), v.Load)
	}
	spec("executed", &e.stats.specExec)
	spec("hit", &e.stats.specHits)
	spec("miss", &e.stats.specMiss)
	spec("reexec", &e.stats.specReexec)
	spec("throttled", &e.stats.specThrottled)

	sync := func(event string, v *atomic.Uint64) {
		reg.CounterFunc("parblockchain_executor_sync_total",
			"Peer-served state sync progress events.",
			withLabels(labels, "event", event), v.Load)
	}
	sync("requests", &e.stats.syncReqs)
	sync("served", &e.stats.syncServed)
	sync("records_adopted", &e.stats.syncRecs)
	sync("snapshots_adopted", &e.stats.syncSnaps)
	sync("rejected", &e.stats.syncRejected)

	counter("parblockchain_executor_prefetch_keys_total",
		"Declared read-set keys warmed by the prefetch pool.", &e.stats.prefetchKeys)
	counter("parblockchain_executor_prefetch_bytes_total",
		"Value bytes pulled through the overlay chain by prefetch.", &e.stats.prefetchBytes)
	counter("parblockchain_executor_prefetch_cold_keys_total",
		"Prefetched keys promoted from a tiered store's cold tier.", &e.stats.prefetchCold)
	counter("parblockchain_executor_prefetch_cold_bytes_total",
		"Value bytes prefetch pulled up from the cold tier.", &e.stats.prefetchColdB)

	gauge := func(name, help string, fn func() float64) {
		reg.GaugeFunc(name, help, labels, fn)
	}
	gauge("parblockchain_executor_window_depth",
		"Blocks currently admitted into the pipeline window.",
		func() float64 { return float64(e.mirror.windowLen.Load()) })
	gauge("parblockchain_executor_queue_depth",
		"Ready transactions queued between dispatch and the worker pool.",
		func() float64 { return float64(e.work.Len()) })
	gauge("parblockchain_executor_halted",
		"1 after a fault-model violation halted protocol progress.",
		func() float64 { return b2f(e.mirror.halted.Load()) })
	gauge("parblockchain_executor_syncing",
		"1 while the state-sync requester is catching up from peers.",
		func() float64 { return b2f(e.mirror.syncing.Load()) })
	gauge("parblockchain_executor_last_progress_seconds",
		"Seconds since the pipeline last admitted or externalized a block.",
		func() float64 { return time.Since(time.Unix(0, e.mirror.lastProgress.Load())).Seconds() })
	gauge("parblockchain_executor_stream_buffer_bytes",
		"Segment payload buffered across all senders (budget: per-orderer).",
		func() float64 { return float64(e.mirror.streamBytes.Load()) })
	gauge("parblockchain_executor_commit_buffer_bytes",
		"COMMIT payload buffered across all senders (budget: per-executor).",
		func() float64 { return float64(e.mirror.commitBytes.Load()) })
	gauge("parblockchain_ledger_height",
		"Blocks in the local ledger.",
		func() float64 { return float64(e.cfg.Ledger.Height()) })

	if ts, ok := e.cfg.Store.(*state.TieredStore); ok {
		ts.RegisterTelemetry(reg, labels)
	}
	if e.cfg.Persist != nil {
		e.cfg.Persist.RegisterTelemetry(reg, labels)
	}
	e.cfg.Tracer.Register(reg, "parblockchain_block_stage_seconds",
		"Block lifecycle latency per pipeline stage (delivery to externalize).", labels)
}

// Status is the executor's /statusz payload: a point-in-time view of the
// pipeline assembled entirely from scrape-safe sources.
type Status struct {
	Height            uint64 `json:"height"`
	TipHash           string `json:"tip_hash"`
	WindowDepth       int    `json:"window_depth"`
	PipelineDepth     int    `json:"pipeline_depth"`
	QueueDepth        int    `json:"queue_depth"`
	Halted            bool   `json:"halted"`
	Syncing           bool   `json:"syncing"`
	MaxSeen           uint64 `json:"max_seen"`
	LastProgressMs    int64  `json:"last_progress_ms"`
	StreamBufferBytes int64  `json:"stream_buffer_bytes"`
	CommitBufferBytes int64  `json:"commit_buffer_bytes"`
	HotKeys           int    `json:"hot_keys,omitempty"`
	ColdKeys          int    `json:"cold_keys,omitempty"`
	HotBytes          int64  `json:"hot_bytes,omitempty"`
}

// Status snapshots the pipeline for the ops server. Safe to call
// concurrently with a running pipeline.
func (e *Executor) Status() Status {
	st := Status{
		Height:            e.cfg.Ledger.Height(),
		TipHash:           e.cfg.Ledger.LastHash().String(),
		WindowDepth:       int(e.mirror.windowLen.Load()),
		PipelineDepth:     e.cfg.PipelineDepth,
		QueueDepth:        e.work.Len(),
		Halted:            e.mirror.halted.Load(),
		Syncing:           e.mirror.syncing.Load(),
		MaxSeen:           e.mirror.maxSeen.Load(),
		LastProgressMs:    time.Since(time.Unix(0, e.mirror.lastProgress.Load())).Milliseconds(),
		StreamBufferBytes: e.mirror.streamBytes.Load(),
		CommitBufferBytes: e.mirror.commitBytes.Load(),
	}
	if ts, ok := e.cfg.Store.(*state.TieredStore); ok {
		tstats := ts.Stats()
		st.HotKeys = tstats.HotKeys
		st.ColdKeys = tstats.ColdKeys
		st.HotBytes = tstats.HotBytes
	}
	return st
}

// Healthy implements the stall-watchdog-informed /healthz readiness
// probe: not ready when halted, while state sync is replaying peers'
// history, or when the pipeline has been still past the stall deadline
// with peers known to be ahead (the same condition that arms the sync
// requester).
func (e *Executor) Healthy() error {
	if e.mirror.halted.Load() {
		return fmt.Errorf("halted")
	}
	if e.mirror.syncing.Load() {
		return fmt.Errorf("state sync in progress at height %d", e.cfg.Ledger.Height())
	}
	if e.cfg.StallTimeout > 0 {
		idle := time.Since(time.Unix(0, e.mirror.lastProgress.Load()))
		if idle >= e.cfg.StallTimeout && e.mirror.maxSeen.Load() > e.cfg.Ledger.Height() {
			return fmt.Errorf("stalled for %v at height %d with peers at %d",
				idle.Round(time.Millisecond), e.cfg.Ledger.Height(), e.mirror.maxSeen.Load())
		}
	}
	return nil
}

// Tracer returns the configured block tracer (nil when tracing is off),
// for /traces dumps and bench per-stage breakdowns.
func (e *Executor) Tracer() *telemetry.BlockTracer { return e.cfg.Tracer }

func withLabels(base telemetry.Labels, k, v string) telemetry.Labels {
	out := make(telemetry.Labels, len(base)+1)
	for bk, bv := range base {
		out[bk] = bv
	}
	out[k] = v
	return out
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
