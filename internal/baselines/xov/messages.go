// Package xov implements the execute-order-validate baseline (the
// paper's "XOV" paradigm, modeled on Hyperledger Fabric): clients first
// have the agents (endorsers) of an application *simulate* a transaction
// against current state, collect an endorsement policy's worth of signed
// read-version/write sets, and then submit the endorsed transaction for
// ordering; every peer finally validates transactions sequentially with
// an MVCC read-set check and aborts those that conflict with an earlier
// committed write — the abort behaviour that collapses XOV throughput
// under contention (Figures 6(b)-(d)).
package xov

import (
	"parblockchain/internal/types"
)

// AbortMVCCConflict is the abort reason of transactions whose read set
// became stale between endorsement and validation. Clients treat it as
// retryable; contract-level failures are not.
const AbortMVCCConflict = "mvcc read conflict"

// KeyVer is one observed read: a key and the committed version the
// endorser saw (0 means the key did not exist).
type KeyVer struct {
	// Key names the record read.
	Key types.Key
	// Ver is the version observed at endorsement.
	Ver uint64
}

// EndorseRequestMsg asks an endorser to simulate a transaction.
type EndorseRequestMsg struct {
	// Tx is the client's transaction.
	Tx *types.Transaction
}

// EndorsementMsg is an endorser's signed simulation result.
type EndorsementMsg struct {
	// TxID identifies the simulated transaction.
	TxID types.TxID
	// ReadVers records every read with its observed version.
	ReadVers []KeyVer
	// Writes is the simulated write set (empty when Aborted).
	Writes []types.KV
	// Aborted marks contract-level failure during simulation.
	Aborted bool
	// AbortReason explains the failure.
	AbortReason string
	// Endorser is the signing agent.
	Endorser types.NodeID
	// Sig signs SignedDigest().
	Sig []byte
}

// ContentDigest hashes the endorsement outcome, excluding the endorser
// identity: endorsements from distinct agents "match" when their content
// digests are equal, which is how the client checks the endorsement
// policy.
func (m *EndorsementMsg) ContentDigest() types.Hash {
	w := types.AcquireWriter()
	defer types.ReleaseWriter(w)
	writeEndorsementContent(w, string(m.TxID), m.ReadVers, m.Writes, m.Aborted, m.AbortReason)
	return hashOf(w.Bytes())
}

// SignedDigest hashes the content plus the endorser identity; it is what
// the endorser signs.
func (m *EndorsementMsg) SignedDigest() types.Hash {
	w := types.AcquireWriter()
	defer types.ReleaseWriter(w)
	writeEndorsementContent(w, string(m.TxID), m.ReadVers, m.Writes, m.Aborted, m.AbortReason)
	w.Str(string(m.Endorser))
	return hashOf(w.Bytes())
}

func writeEndorsementContent(w *types.ByteWriter, txID string, readVers []KeyVer,
	writes []types.KV, aborted bool, reason string) {
	w.Str(txID)
	w.U64(uint64(len(readVers)))
	for _, rv := range readVers {
		w.Str(rv.Key)
		w.U64(rv.Ver)
	}
	w.U64(uint64(len(writes)))
	for _, kv := range writes {
		w.Str(kv.Key)
		w.Blob(kv.Val)
	}
	if aborted {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
	w.Str(reason)
}

func hashOf(b []byte) types.Hash { return shaSum(b) }

// EndorsedTx is the client-assembled, policy-satisfying transaction that
// enters the ordering service.
type EndorsedTx struct {
	// Tx is the original transaction.
	Tx *types.Transaction
	// ReadVers and Writes are the agreed simulation outcome.
	ReadVers []KeyVer
	Writes   []types.KV
	// SimAborted marks a deterministic contract failure observed at
	// endorsement; it commits as aborted without MVCC checks.
	SimAborted  bool
	AbortReason string
	// Endorsers and Sigs carry the endorsement policy evidence, aligned
	// index-to-index.
	Endorsers []types.NodeID
	Sigs      [][]byte
}

// Marshal encodes the endorsed transaction for consensus ordering.
func (e *EndorsedTx) Marshal() []byte {
	w := types.AcquireWriter()
	defer types.ReleaseWriter(w)
	// Embed the transaction as a length-prefixed blob without the
	// intermediate allocation of Tx.Marshal: write a placeholder length,
	// encode in place, backfill.
	lenOff := w.Len()
	w.U64(0)
	txStart := w.Len()
	e.Tx.MarshalTo(w)
	w.PatchU64(lenOff, uint64(w.Len()-txStart))
	w.U64(uint64(len(e.ReadVers)))
	for _, rv := range e.ReadVers {
		w.Str(rv.Key)
		w.U64(rv.Ver)
	}
	w.U64(uint64(len(e.Writes)))
	for _, kv := range e.Writes {
		w.Str(kv.Key)
		w.Blob(kv.Val)
	}
	if e.SimAborted {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
	w.Str(e.AbortReason)
	w.U64(uint64(len(e.Endorsers)))
	for i, id := range e.Endorsers {
		w.Str(string(id))
		w.Blob(e.Sigs[i])
	}
	return w.CloneBytes()
}

// UnmarshalEndorsedTx decodes an EndorsedTx.
func UnmarshalEndorsedTx(b []byte) (*EndorsedTx, error) {
	r := types.NewByteReader(b)
	txBytes := r.Blob()
	if err := r.Err(); err != nil {
		return nil, err
	}
	tx, err := types.UnmarshalTransaction(txBytes)
	if err != nil {
		return nil, err
	}
	e := &EndorsedTx{Tx: tx}
	nReads := r.U64()
	for i := uint64(0); i < nReads && r.Err() == nil; i++ {
		e.ReadVers = append(e.ReadVers, KeyVer{Key: r.Str(), Ver: r.U64()})
	}
	nWrites := r.U64()
	for i := uint64(0); i < nWrites && r.Err() == nil; i++ {
		e.Writes = append(e.Writes, types.KV{Key: r.Str(), Val: r.Blob()})
	}
	e.SimAborted = r.Byte() == 1
	e.AbortReason = r.Str()
	nSigs := r.U64()
	for i := uint64(0); i < nSigs && r.Err() == nil; i++ {
		e.Endorsers = append(e.Endorsers, types.NodeID(r.Str()))
		e.Sigs = append(e.Sigs, r.Blob())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

// SubmitMsg carries a marshaled EndorsedTx from a client to an orderer.
type SubmitMsg struct {
	// Payload is the marshaled EndorsedTx.
	Payload []byte
}

// ApproxSize implements transport sizing.
func (m *SubmitMsg) ApproxSize() int { return len(m.Payload) + 16 }

// BlockMsg announces an ordered block of endorsed transactions to all
// peers for validation.
type BlockMsg struct {
	// Number is the block height.
	Number uint64
	// PrevHash chains validation blocks.
	PrevHash types.Hash
	// Items are marshaled EndorsedTx payloads in their agreed order.
	Items [][]byte
	// Orderer is the announcing orderer.
	Orderer types.NodeID
	// Sig signs Digest().
	Sig []byte
}

// Digest hashes the block identity for signing and quorum matching.
func (m *BlockMsg) Digest() types.Hash {
	w := types.AcquireWriter()
	defer types.ReleaseWriter(w)
	w.U64(m.Number)
	w.Blob(m.PrevHash[:])
	w.U64(uint64(len(m.Items)))
	for _, item := range m.Items {
		h := shaSum(item)
		w.Blob(h[:])
	}
	return shaSum(w.Bytes())
}

// ApproxSize implements transport sizing.
func (m *BlockMsg) ApproxSize() int {
	size := 128 + len(m.Sig)
	for _, item := range m.Items {
		size += len(item) + 8
	}
	return size
}
