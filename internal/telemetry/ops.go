package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServerConfig configures a per-node ops server. Only Addr is required;
// absent sections simply 404.
type ServerConfig struct {
	// Addr is the listen address (e.g. "127.0.0.1:9180", ":0").
	Addr string
	// Registry backs /metrics.
	Registry *Registry
	// Status produces the /statusz payload (marshaled as JSON).
	Status func() any
	// Health backs /healthz: nil means ready (200), an error means not
	// ready (503 with the error text).
	Health func() error
	// Traces produces the /traces payload (slowest block traces).
	Traces func() []TraceRecord
	// ReadHeaderTimeout bounds how long a client may dawdle sending
	// request headers (default 5s). Kept small: the ops port must not be
	// a slowloris hold on a validator.
	ReadHeaderTimeout time.Duration
	// Logf, when set, receives server lifecycle messages.
	Logf func(format string, args ...any)
}

// Server is a running ops HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewHandler builds the ops mux: /metrics (Prometheus text exposition),
// /statusz (JSON), /healthz, /traces (JSON), and /debug/pprof.
func NewHandler(cfg ServerConfig) http.Handler {
	mux := http.NewServeMux()
	get := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				w.Header().Set("Allow", "GET, HEAD")
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			h(w, r)
		})
	}
	if cfg.Registry != nil {
		get("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = cfg.Registry.WritePrometheus(w)
		})
	}
	if cfg.Status != nil {
		get("/statusz", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, cfg.Status())
		})
	}
	if cfg.Health != nil {
		get("/healthz", func(w http.ResponseWriter, r *http.Request) {
			if err := cfg.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
		})
	}
	if cfg.Traces != nil {
		get("/traces", func(w http.ResponseWriter, r *http.Request) {
			traces := cfg.Traces()
			if traces == nil {
				traces = []TraceRecord{}
			}
			writeJSON(w, traces)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(append(out, '\n'))
}

// StartServer binds cfg.Addr and serves the ops endpoints until Close.
func StartServer(cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: ops listen on %s: %w", cfg.Addr, err)
	}
	if cfg.ReadHeaderTimeout <= 0 {
		cfg.ReadHeaderTimeout = 5 * time.Second
	}
	srv := &http.Server{
		Handler:           NewHandler(cfg),
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
	}
	s := &Server{ln: ln, srv: srv}
	go func() {
		err := srv.Serve(ln)
		if err != nil && err != http.ErrServerClosed && cfg.Logf != nil {
			cfg.Logf("ops server on %s exited: %v", ln.Addr(), err)
		}
	}()
	if cfg.Logf != nil {
		cfg.Logf("ops server listening on %s", ln.Addr())
	}
	return s, nil
}

// Addr returns the bound address (useful with ":0" configs).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and closes idle connections.
func (s *Server) Close() error { return s.srv.Close() }
