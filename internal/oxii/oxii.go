// Package oxii assembles ParBlockchain networks: it wires the ordering
// service (pluggable consensus + block cutting + dependency-graph
// generation) and the executor fleet (Algorithms 1-3) over a transport,
// generates node keys, installs contracts on each application's agents,
// seeds genesis state, and provides the client driver used by examples
// and benchmarks.
//
// This package is the system-level entry point of the reproduction: a
// handful of lines create a full ParBlockchain deployment in-process.
package oxii

import (
	"fmt"
	"path/filepath"
	"time"

	"parblockchain/internal/consensus"
	"parblockchain/internal/consensus/kafkaorder"
	"parblockchain/internal/consensus/pbft"
	"parblockchain/internal/consensus/raft"
	"parblockchain/internal/contract"
	"parblockchain/internal/cryptoutil"
	"parblockchain/internal/depgraph"
	"parblockchain/internal/execution"
	"parblockchain/internal/ledger"
	"parblockchain/internal/ordering"
	"parblockchain/internal/persist"
	"parblockchain/internal/state"
	"parblockchain/internal/telemetry"
	"parblockchain/internal/transport"
	"parblockchain/internal/types"
)

// ConsensusKind selects the pluggable ordering protocol.
type ConsensusKind string

// The supported consensus plugs.
const (
	// ConsensusPBFT is Byzantine fault tolerant (3f+1).
	ConsensusPBFT ConsensusKind = "pbft"
	// ConsensusRaft is crash fault tolerant (2f+1).
	ConsensusRaft ConsensusKind = "raft"
	// ConsensusKafka is the Kafka-style ordering service of the paper's
	// evaluation setup.
	ConsensusKafka ConsensusKind = "kafka"
)

// Config describes a ParBlockchain deployment.
type Config struct {
	// Orderers names the ordering service members.
	Orderers []types.NodeID
	// Executors names all executor peers (agents and passive nodes).
	Executors []types.NodeID
	// Clients names the client identities (keys are generated for them so
	// orderers can verify request signatures).
	Clients []types.NodeID
	// Agents maps each application to its agent subset of Executors
	// (Sigma in the paper). Every agent gets the application's contract
	// installed.
	Agents map[types.AppID][]types.NodeID
	// Contracts maps each application to its contract logic.
	Contracts map[types.AppID]contract.Contract
	// Tau is the per-application required number of matching results;
	// missing entries default to 1.
	Tau map[types.AppID]int
	// Consensus picks the ordering protocol. Default ConsensusKafka (the
	// paper's evaluation setup).
	Consensus ConsensusKind
	// ConsensusBatch tunes batching inside consensus.
	ConsensusBatch consensus.BatchConfig
	// MaxBlockTxns, MaxBlockBytes, MaxBlockInterval are the three block
	// cut conditions (defaults 200 / 2MB / 100ms).
	MaxBlockTxns     int
	MaxBlockBytes    int
	MaxBlockInterval time.Duration
	// GraphMode selects the dependency rule (default Standard).
	GraphMode depgraph.Mode
	// UsePairwiseGraph selects the paper-faithful O(n^2) graph builder.
	UsePairwiseGraph bool
	// EagerCommit selects Algorithm 2's eager per-transaction multicast.
	EagerCommit bool
	// Speculate lets executors run dependent transactions against a
	// predecessor's uncommitted result (the first vote any agent reports)
	// instead of stalling for the tau(A) quorum, re-validating at commit
	// and cascading re-execution on a digest mismatch. COMMIT multicasts
	// of speculative results are buffered until every speculated-upon
	// input has committed with a matching digest, so ledger and state are
	// bit-identical to the non-speculative path in fault-free runs.
	Speculate bool
	// ExecWorkers sizes each executor's worker pool (default 8).
	ExecWorkers int
	// Scheduler selects each executor's ready-transaction dispatch policy:
	// FIFO (the paper's baseline), critical-path (longest remaining
	// dependency chain first), or load-balanced (per-worker queues keyed
	// by first write, QueCC-style, with stealing). Schedulers reorder only
	// the ready set, so ledger and state are bit-identical under all of
	// them; the zero value is FIFO.
	Scheduler execution.SchedulerKind
	// PrefetchWorkers sizes each executor's read-set prefetch pool: as a
	// block is admitted, its declared read sets are warmed against the
	// overlay chain and the state store before workers reach them, bounded
	// per block by a byte cap. Zero disables prefetching.
	PrefetchWorkers int
	// PipelineDepth bounds each executor's window of in-flight blocks:
	// blocks stream through execution while earlier blocks are still
	// committing, with cross-block conflicts stitched into the dependency
	// graph. 1 restores the paper's strict per-block barrier; zero means
	// the executor default (4). Finalization order and final state are
	// identical at every depth.
	PipelineDepth int
	// SegmentTxns makes the orderers stream each block to the executors
	// in signed segments of this many transactions (with incrementally
	// generated dependency edges) as consensus delivers them, closed by a
	// small seal message — instead of one monolithic NEWBLOCK at the cut.
	// Executors begin executing a block's early transactions while its
	// tail is still being ordered; finalization still waits for a quorum
	// of matching seals, so ledger and state are identical either way.
	// Zero keeps the monolithic NEWBLOCK wire format (also the right
	// setting for deployments whose observer tooling consumes NEWBLOCK).
	SegmentTxns int
	// DataDir roots the durability subsystem. Each executor keeps a
	// write-ahead log of finalized blocks and periodic state snapshots
	// under DataDir/<executor-id>; each orderer keeps its cut-state log
	// under DataDir/<orderer-id>/olog and — under Raft or Kafka — its
	// consensus log and vote/offset state under
	// DataDir/<orderer-id>/consensus, all through the same persist
	// layer. A rebuilt Network on the same directory resumes every
	// executor from its durable height and every orderer cutting at
	// height N+1, so a full-cluster restart converges bit-identically to
	// an always-up cluster. Empty keeps everything in memory, exactly as
	// before the subsystem existed.
	//
	// Under PBFT the consensus instance itself stays in-memory (view
	// state is not persisted); the orderers' cut-state logs still
	// recover block numbers, dedupe generations, and pending
	// transactions, and consensus re-orders in-flight traffic.
	DataDir string
	// FsyncPolicy selects when WAL appends reach stable storage (group,
	// always, or never); empty means group — one fsync per finalize
	// batch, so pipelined blocks amortize the durability cost. Ignored
	// without DataDir.
	FsyncPolicy persist.FsyncPolicy
	// SnapshotInterval is the number of blocks between state snapshots
	// (and WAL truncations); zero uses the persist default. Ignored
	// without DataDir.
	SnapshotInterval int
	// SegmentBytes is each executor's WAL segment roll threshold; zero
	// uses the persist default. Small values make WAL truncation
	// aggressive, which (with SnapshotInterval) controls how far back
	// peers can serve state-sync records before falling back to
	// snapshots. Ignored without DataDir.
	SegmentBytes int
	// StateBackend selects each executor's committed-state store: "" or
	// "memory" for the all-in-RAM KVStore, "tiered" for a byte-budgeted
	// hot cache over disk-resident cold segments (state larger than
	// RAM). With DataDir the cold tier lives under the executor's data
	// directory and snapshots become backend-native; without DataDir a
	// tiered store uses a private temp directory, removed when the
	// network stops. Ledger and state are bit-identical across backends.
	StateBackend string
	// HotTierBytes budgets the tiered backend's hot cache per executor;
	// zero uses the state package default. Ignored by the memory backend.
	HotTierBytes int64
	// MinHorizon sets each executor's minimum future-buffering horizon in
	// blocks; zero uses the executor default. Larger values absorb longer
	// orderer/executor skew before far-future traffic is dropped, at the
	// cost of buffered memory on lagging nodes.
	MinHorizon int
	// SyncStallTimeout arms each executor's state-sync watchdog: a node
	// that sees peers announce blocks it cannot admit, and makes no
	// pipeline progress for this long, requests the missing history from
	// peer executors (serving from their WAL and snapshots when DataDir
	// is set). Zero disables the watchdog; serving peers' requests is
	// always on when durability is.
	SyncStallTimeout time.Duration
	// Trace enables block-lifecycle tracing on every executor: per-stage
	// latency histograms (admission through externalize) plus a ring of
	// the slowest traces. Off, executors carry a nil tracer and the
	// instrumentation costs nothing — not even a clock read.
	Trace bool
	// TraceRing sizes each tracer's slowest-blocks ring (0 = telemetry
	// default). Ignored unless tracing is on.
	TraceRing int
	// OpsAddrs maps node IDs to ops-server listen addresses (":0" picks a
	// free port). A node listed here serves /metrics, /statusz, /healthz,
	// /traces, and pprof from Start until Stop; listed executors are
	// traced as if Trace were set. Nodes absent from the map get no
	// server and no telemetry registry.
	OpsAddrs map[types.NodeID]string
	// Crypto enables ed25519 signing and verification end to end. When
	// false, no-op signers model the crypto-free ablation.
	Crypto bool
	// ACL restricts client/application pairs; nil allows all.
	ACL *ordering.AccessControl
	// Genesis seeds every executor's state store before startup.
	Genesis []types.KV
	// OnCommit observes finalized blocks at the observer executor
	// (Executors[0]); used for metrics and client completion routing.
	OnCommit execution.CommitHook
	// Net is the transport; required.
	Net *transport.InMemNetwork
	// Logf receives diagnostics; nil uses the stdlib logger.
	Logf func(format string, args ...any)
}

// Network is a running ParBlockchain deployment.
type Network struct {
	cfg       Config
	Orderers  []*ordering.Orderer
	Executors []*execution.Executor
	// Stores and Ledgers are indexed like cfg.Executors. Stop closes the
	// stores (releasing a tiered backend's cold-tier files), so read
	// anything you need — hashes stay readable, cold values do not —
	// before stopping the network.
	Stores  []state.Backend
	Ledgers []*ledger.Ledger
	// Persists holds each executor's durability manager (nil entries
	// without Config.DataDir), indexed like cfg.Executors; Stop closes
	// them after the executors quiesce.
	Persists []*persist.Manager
	// Recovered holds each executor's recovery provenance (snapshot
	// height, WAL records replayed) when DataDir is set, for logs and
	// tests; nil entries otherwise.
	Recovered  []*persist.Recovered
	signers    map[types.NodeID]cryptoutil.Signer
	keyring    *cryptoutil.KeyRing
	clients    map[types.NodeID]*Client
	router     *CommitRouter
	opsServers map[types.NodeID]*telemetry.Server
}

// New builds a ParBlockchain network. Call Start to run it.
func New(cfg Config) (*Network, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("oxii: Config.Net is required")
	}
	if len(cfg.Orderers) == 0 || len(cfg.Executors) == 0 {
		return nil, fmt.Errorf("oxii: need at least one orderer and one executor")
	}
	if cfg.Consensus == "" {
		cfg.Consensus = ConsensusKafka
	}
	if !persist.ValidStateBackend(cfg.StateBackend) {
		return nil, fmt.Errorf("oxii: unknown state backend %q (want one of %v)",
			cfg.StateBackend, persist.StateBackendNames)
	}
	for app, agents := range cfg.Agents {
		if len(agents) == 0 {
			return nil, fmt.Errorf("oxii: application %s has no agents", app)
		}
		if _, ok := cfg.Contracts[app]; !ok {
			return nil, fmt.Errorf("oxii: application %s has no contract", app)
		}
	}

	nw := &Network{
		cfg:        cfg,
		signers:    make(map[types.NodeID]cryptoutil.Signer),
		keyring:    cryptoutil.NewKeyRing(),
		clients:    make(map[types.NodeID]*Client),
		router:     NewCommitRouter(),
		opsServers: make(map[types.NodeID]*telemetry.Server),
	}

	// Keys for every identity in the deployment.
	all := make([]types.NodeID, 0, len(cfg.Orderers)+len(cfg.Executors)+len(cfg.Clients))
	all = append(all, cfg.Orderers...)
	all = append(all, cfg.Executors...)
	all = append(all, cfg.Clients...)
	for _, id := range all {
		if cfg.Crypto {
			kp, err := cryptoutil.GenerateKeyPair(string(id))
			if err != nil {
				return nil, err
			}
			nw.keyring.Add(string(id), kp.Public())
			nw.signers[id] = kp
		} else {
			nw.signers[id] = cryptoutil.NoopSigner{NodeID: string(id)}
		}
	}
	// closePersists releases every durability manager and store opened so
	// far, so a construction failure on any later path leaks no WAL
	// segment or cold-tier handles (and a retried New starts from clean
	// directories).
	closePersists := func() {
		for _, m := range nw.Persists {
			if m != nil {
				m.Close()
			}
		}
		for _, s := range nw.Stores {
			s.Close()
		}
	}

	// Executors.
	for i, id := range cfg.Executors {
		exec, store, led, mgr, rec, err := nw.buildExecutor(i, id)
		if err != nil {
			closePersists()
			return nil, err
		}
		nw.Executors = append(nw.Executors, exec)
		nw.Stores = append(nw.Stores, store)
		nw.Ledgers = append(nw.Ledgers, led)
		nw.Persists = append(nw.Persists, mgr)
		nw.Recovered = append(nw.Recovered, rec)
	}

	// Orderers with their consensus instances. A failure mid-loop stops
	// the orderers built so far (releasing their durable-log locks) in
	// addition to the executor-side cleanup.
	for _, id := range cfg.Orderers {
		ord, err := nw.buildOrderer(id)
		if err != nil {
			for _, prev := range nw.Orderers {
				prev.Stop()
			}
			closePersists()
			return nil, err
		}
		nw.Orderers = append(nw.Orderers, ord)
	}
	return nw, nil
}

// buildOrderer assembles one orderer node: endpoint, consensus instance
// (with durable storage under DataDir/<id>/consensus for Raft and
// Kafka), and the ordering core (with its durable cut-state log under
// DataDir/<id>/olog). New uses it for initial construction,
// RestartOrderer to rebuild a killed node in place.
func (nw *Network) buildOrderer(id types.NodeID) (*ordering.Orderer, error) {
	cfg := nw.cfg
	ep, err := cfg.Net.Endpoint(id)
	if err != nil {
		return nil, err
	}
	var ordererDir, consensusDir string
	if cfg.DataDir != "" {
		ordererDir = filepath.Join(cfg.DataDir, string(id), "olog")
		consensusDir = filepath.Join(cfg.DataDir, string(id), "consensus")
	}
	cons, err := buildConsensus(cfg.Consensus, id, cfg.Orderers, ep, cfg.ConsensusBatch,
		consensusDir, cfg.FsyncPolicy, cfg.Logf)
	if err != nil {
		return nil, err
	}
	ord, err := ordering.New(ordering.Config{
		ID:               id,
		Endpoint:         ep,
		Consensus:        cons,
		Executors:        cfg.Executors,
		Signer:           nw.signers[id],
		Verifier:         nw.verifier(),
		VerifyClientSigs: cfg.Crypto,
		ACL:              cfg.ACL,
		MaxBlockTxns:     cfg.MaxBlockTxns,
		MaxBlockBytes:    cfg.MaxBlockBytes,
		MaxBlockInterval: cfg.MaxBlockInterval,
		BuildGraph:       true,
		GraphMode:        cfg.GraphMode,
		UsePairwiseGraph: cfg.UsePairwiseGraph,
		SegmentTxns:      cfg.SegmentTxns,
		Dir:              ordererDir,
		Fsync:            cfg.FsyncPolicy,
		// Raft and Kafka persist their logs and redeliver the committed
		// prefix with stable sequence numbers, so replayed entries can be
		// recognized and skipped by sequence. PBFT restarts its sequence
		// space, so its re-deliveries are deduped by content instead.
		ResumeSeq: ordererDir != "" && cfg.Consensus != ConsensusPBFT,
		Logf:      cfg.Logf,
	})
	if err != nil {
		cons.Stop() // release the consensus storage lock
		return nil, fmt.Errorf("oxii: orderer %s: %w", id, err)
	}
	return ord, nil
}

// verifier returns the verifier matching the crypto setting.
func (nw *Network) verifier() cryptoutil.Verifier {
	if nw.cfg.Crypto {
		return nw.keyring
	}
	return cryptoutil.NoopVerifier{}
}

// orderQuorum returns the number of matching NEWBLOCK messages an executor
// requires: f+1 under PBFT (a correct orderer among them), 1 under the
// crash-fault-tolerant protocols where orderers do not lie.
func (nw *Network) orderQuorum() int {
	if nw.cfg.Consensus == ConsensusPBFT {
		f := (len(nw.cfg.Orderers) - 1) / 3
		return f + 1
	}
	return 1
}

func buildConsensus(kind ConsensusKind, id types.NodeID, members []types.NodeID,
	ep transport.Endpoint, batch consensus.BatchConfig,
	dir string, fsync persist.FsyncPolicy, logf func(string, ...any)) (consensus.Node, error) {
	sender := consensus.SenderFunc(ep.Send)
	switch kind {
	case ConsensusPBFT:
		// PBFT state stays in-memory; the orderer's cut-state log above it
		// still provides crash recovery of the cutting side.
		return pbft.New(pbft.Config{ID: id, Members: members, Sender: sender, Batch: batch}), nil
	case ConsensusRaft:
		return raft.New(raft.Config{ID: id, Members: members, Sender: sender,
			Dir: dir, Fsync: fsync, Logf: logf})
	case ConsensusKafka, "":
		return kafkaorder.New(kafkaorder.Config{ID: id, Members: members, Sender: sender,
			Batch: batch, Dir: dir, Fsync: fsync, Logf: logf})
	default:
		return nil, fmt.Errorf("oxii: unknown consensus kind %q", kind)
	}
}

// Start launches every node. Executors start first so no NEWBLOCK is
// dropped. Nodes listed in Config.OpsAddrs get their ops servers here;
// a server that fails to listen is logged and skipped, never fatal.
func (nw *Network) Start() {
	for _, e := range nw.Executors {
		e.Start()
	}
	for _, o := range nw.Orderers {
		o.Start()
	}
	for i, id := range nw.cfg.Executors {
		nw.startExecutorOps(i, id)
	}
	for i, id := range nw.cfg.Orderers {
		nw.startOrdererOps(i, id)
	}
}

// startExecutorOps starts executor i's ops server when configured. The
// status/health/trace closures dereference nw.Executors[i] at request
// time, so a restarted executor is observed live; the metrics registry
// binds to the current instance (RestartExecutor rebuilds the server).
func (nw *Network) startExecutorOps(i int, id types.NodeID) {
	addr, ok := nw.cfg.OpsAddrs[id]
	if !ok {
		return
	}
	reg := telemetry.NewRegistry()
	labels := telemetry.Labels{"node": string(id)}
	nw.Executors[i].RegisterTelemetry(reg, labels)
	nw.cfg.Net.RegisterTelemetry(reg, labels)
	srv, err := telemetry.StartServer(telemetry.ServerConfig{
		Addr:     addr,
		Registry: reg,
		Status:   func() any { return nw.Executors[i].Status() },
		Health:   func() error { return nw.Executors[i].Healthy() },
		Traces:   func() []telemetry.TraceRecord { return nw.Executors[i].Tracer().Slowest() },
		Logf:     nw.cfg.Logf,
	})
	if err != nil {
		if nw.cfg.Logf != nil {
			nw.cfg.Logf("oxii: ops server for %s: %v", id, err)
		}
		return
	}
	nw.opsServers[id] = srv
}

// startOrdererOps starts orderer i's ops server when configured.
func (nw *Network) startOrdererOps(i int, id types.NodeID) {
	addr, ok := nw.cfg.OpsAddrs[id]
	if !ok {
		return
	}
	reg := telemetry.NewRegistry()
	labels := telemetry.Labels{"node": string(id)}
	nw.Orderers[i].RegisterTelemetry(reg, labels)
	nw.cfg.Net.RegisterTelemetry(reg, labels)
	ord := nw.Orderers[i]
	srv, err := telemetry.StartServer(telemetry.ServerConfig{
		Addr:     addr,
		Registry: reg,
		Status:   func() any { return ord.Status() },
		Health:   ord.Healthy,
		Logf:     nw.cfg.Logf,
	})
	if err != nil {
		if nw.cfg.Logf != nil {
			nw.cfg.Logf("oxii: ops server for %s: %v", id, err)
		}
		return
	}
	nw.opsServers[id] = srv
}

// closeOps shuts down one node's ops server, if running.
func (nw *Network) closeOps(id types.NodeID) {
	if srv, ok := nw.opsServers[id]; ok {
		srv.Close()
		delete(nw.opsServers, id)
	}
}

// OpsServer returns the running ops server of a node, or nil. The
// returned server's Addr resolves ":0" configs to the bound port.
func (nw *Network) OpsServer(id types.NodeID) *telemetry.Server {
	return nw.opsServers[id]
}

// Stop shuts every node down and closes the transport endpoints owned by
// nodes. The underlying transport itself belongs to the caller.
// Durability managers close after their executors quiesce, so every
// finalized block is on disk when Stop returns.
func (nw *Network) Stop() {
	for id := range nw.opsServers {
		nw.closeOps(id)
	}
	for _, o := range nw.Orderers {
		o.Stop()
	}
	for _, e := range nw.Executors {
		e.Stop()
	}
	for i, m := range nw.Persists {
		if m == nil {
			continue
		}
		if err := m.Close(); err != nil && nw.cfg.Logf != nil {
			nw.cfg.Logf("oxii: closing durability manager of %s: %v", nw.cfg.Executors[i], err)
		}
	}
	for i, s := range nw.Stores {
		if err := s.Close(); err != nil && nw.cfg.Logf != nil {
			nw.cfg.Logf("oxii: closing store of %s: %v", nw.cfg.Executors[i], err)
		}
	}
	nw.router.Shutdown()
}

// buildExecutor assembles one executor node: endpoint, contract
// registry, store and ledger (recovered from the durable directory when
// DataDir is set, genesis-seeded in-memory otherwise), and the executor
// itself. New uses it for initial construction, RestartExecutor to
// rebuild a killed node in place.
func (nw *Network) buildExecutor(i int, id types.NodeID) (*execution.Executor,
	state.Backend, *ledger.Ledger, *persist.Manager, *persist.Recovered, error) {
	cfg := nw.cfg
	ep, err := cfg.Net.Endpoint(id)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	registry := contract.NewRegistry()
	for app, agents := range cfg.Agents {
		for _, agent := range agents {
			if agent == id {
				registry.Install(app, cfg.Contracts[app])
			}
		}
	}
	// Per the zero-copy state contract the genesis value slices end
	// up shared by every node's store; that is safe because stores
	// never mutate values and Genesis is not touched after setup.
	// With DataDir set the store and ledger instead come from the
	// executor's durable state (genesis seeds only a fresh
	// directory), so a rebuilt network resumes where it stopped.
	var (
		store state.Backend
		led   *ledger.Ledger
		mgr   *persist.Manager
		rec   *persist.Recovered
	)
	if cfg.DataDir != "" {
		mgr, rec, err = persist.Open(persist.Config{
			Dir:              filepath.Join(cfg.DataDir, string(id)),
			Fsync:            cfg.FsyncPolicy,
			SnapshotInterval: cfg.SnapshotInterval,
			SegmentBytes:     cfg.SegmentBytes,
			StateBackend:     cfg.StateBackend,
			HotTierBytes:     cfg.HotTierBytes,
			Logf:             cfg.Logf,
		}, cfg.Genesis)
		if err != nil {
			return nil, nil, nil, nil, nil, fmt.Errorf("oxii: executor %s: %w", id, err)
		}
		store, led = rec.Store, rec.Ledger
	} else {
		if cfg.StateBackend == "tiered" {
			// Non-durable tiered mode: the cold tier lives in a private
			// temp directory, removed when the store closes. Benchmarks
			// use this to measure larger-than-RAM state without a DataDir.
			ts, terr := state.NewTieredStore(state.TieredConfig{HotBytes: cfg.HotTierBytes})
			if terr != nil {
				return nil, nil, nil, nil, nil, fmt.Errorf("oxii: executor %s: %w", id, terr)
			}
			store = ts
		} else {
			store = state.NewKVStore()
		}
		store.Apply(cfg.Genesis)
		led = ledger.New()
	}
	// Only the observer (Executors[0]) routes client completions and
	// feeds the user hook; hooks on every peer would duplicate them.
	var hook execution.CommitHook
	if i == 0 {
		routerHook := nw.router.Hook()
		userHook := cfg.OnCommit
		hook = func(block *types.Block, results []types.TxResult) {
			routerHook(block, results)
			if userHook != nil {
				userHook(block, results)
			}
		}
	}
	var tracer *telemetry.BlockTracer
	if cfg.Trace || cfg.OpsAddrs[id] != "" {
		tracer = telemetry.NewBlockTracer(cfg.TraceRing)
	}
	exec := execution.New(execution.Config{
		ID:              id,
		Endpoint:        ep,
		Tracer:          tracer,
		Registry:        registry,
		AgentsOf:        cfg.Agents,
		Tau:             cfg.Tau,
		OrderQuorum:     nw.orderQuorum(),
		Executors:       cfg.Executors,
		Store:           store,
		Ledger:          led,
		Workers:         cfg.ExecWorkers,
		Scheduler:       cfg.Scheduler,
		PrefetchWorkers: cfg.PrefetchWorkers,
		PipelineDepth:   cfg.PipelineDepth,
		GraphMode:       cfg.GraphMode,
		PairwiseGraph:   cfg.UsePairwiseGraph,
		EagerCommit:     cfg.EagerCommit,
		Speculate:       cfg.Speculate,
		MinHorizon:      cfg.MinHorizon,
		StallTimeout:    cfg.SyncStallTimeout,
		Signer:          nw.signers[id],
		Verifier:        nw.verifier(),
		VerifySigs:      cfg.Crypto,
		Persist:         mgr,
		OnCommit:        hook,
		Logf:            cfg.Logf,
	})
	return exec, store, led, mgr, rec, nil
}

// KillExecutor takes executor i down the way a process kill would: its
// endpoint is removed from the network first (in-flight and future
// traffic to the node is lost, peers see silence), then the node's
// goroutines stop and its durability manager closes, leaving only what
// the WAL and snapshots already held. The chaos harness pairs it with
// RestartExecutor.
func (nw *Network) KillExecutor(i int) {
	id := nw.cfg.Executors[i]
	nw.closeOps(id)
	nw.cfg.Net.Remove(id)
	nw.Executors[i].Stop()
	if m := nw.Persists[i]; m != nil {
		if err := m.Close(); err != nil && nw.cfg.Logf != nil {
			nw.cfg.Logf("oxii: closing durability manager of killed %s: %v", id, err)
		}
	}
	// A dead process holds no file handles on its cold tier; release
	// ours so RestartExecutor reopens the directory cleanly.
	if err := nw.Stores[i].Close(); err != nil && nw.cfg.Logf != nil {
		nw.cfg.Logf("oxii: closing store of killed %s: %v", id, err)
	}
}

// RestartExecutor rebuilds and starts a killed executor in place: a
// fresh endpoint replaces the severed one, store and ledger recover from
// the node's durable directory (or restart from genesis without
// DataDir), and the Stores/Ledgers/Persists/Recovered slots update to
// the new instances. The rejoined node catches up on whatever it missed
// via the executors' state-sync protocol, so nothing needs to be
// re-streamed by the orderers.
func (nw *Network) RestartExecutor(i int) error {
	exec, store, led, mgr, rec, err := nw.buildExecutor(i, nw.cfg.Executors[i])
	if err != nil {
		return err
	}
	nw.Executors[i] = exec
	nw.Stores[i] = store
	nw.Ledgers[i] = led
	nw.Persists[i] = mgr
	nw.Recovered[i] = rec
	exec.Start()
	// A fresh ops server binds the metrics registry to the rebuilt
	// executor; the old one (closed by KillExecutor) sampled the corpse.
	nw.startExecutorOps(i, nw.cfg.Executors[i])
	return nil
}

// KillOrderer takes orderer i down the way a process kill would: its
// endpoint is removed from the network first (in-flight and future
// traffic to the node is lost, peers see silence), then the node's
// goroutines stop and its durable logs drop their unsynced bytes — what
// a power loss does to the page cache — keeping only what fsync already
// covered. The chaos harness pairs it with RestartOrderer.
func (nw *Network) KillOrderer(i int) {
	id := nw.cfg.Orderers[i]
	nw.closeOps(id)
	nw.cfg.Net.Remove(id)
	nw.Orderers[i].Kill()
}

// RestartOrderer rebuilds and starts a killed orderer in place: a fresh
// endpoint replaces the severed one, the cut-state log (and, under
// Raft/Kafka, the consensus log) recovers from the node's durable
// directory, and the rejoined orderer resumes cutting at the height
// after its last fsynced cut — re-streaming the retained window so
// executors that missed blocks catch up.
func (nw *Network) RestartOrderer(i int) error {
	ord, err := nw.buildOrderer(nw.cfg.Orderers[i])
	if err != nil {
		return err
	}
	nw.Orderers[i] = ord
	ord.Start()
	nw.startOrdererOps(i, nw.cfg.Orderers[i])
	return nil
}

// Client returns (creating on first use) the driver for a configured
// client identity.
func (nw *Network) Client(id types.NodeID) (*Client, error) {
	if c, ok := nw.clients[id]; ok {
		return c, nil
	}
	signer, ok := nw.signers[id]
	if !ok {
		return nil, fmt.Errorf("oxii: unknown client %s (add it to Config.Clients)", id)
	}
	ep, err := nw.cfg.Net.Endpoint(id)
	if err != nil {
		return nil, err
	}
	c := NewClient(id, ep, signer, nw.cfg.Orderers, nw.router)
	nw.clients[id] = c
	return c, nil
}

// Router exposes the commit router (for tests that register directly).
func (nw *Network) Router() *CommitRouter { return nw.router }

// ObserverStore returns the observer executor's (Executors[0]) state
// store. It panics with a descriptive message if the network holds no
// executors — possible only for a Network value not built by New, which
// rejects executor-less configurations.
func (nw *Network) ObserverStore() state.Backend {
	if len(nw.Stores) == 0 {
		panic("oxii: network has no executors; ObserverStore needs Executors[0] (construct the Network with New)")
	}
	return nw.Stores[0]
}

// ObserverLedger returns the observer executor's (Executors[0]) ledger.
// It panics with a descriptive message if the network holds no executors
// — possible only for a Network value not built by New, which rejects
// executor-less configurations.
func (nw *Network) ObserverLedger() *ledger.Ledger {
	if len(nw.Ledgers) == 0 {
		panic("oxii: network has no executors; ObserverLedger needs Executors[0] (construct the Network with New)")
	}
	return nw.Ledgers[0]
}
