package oxii

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"parblockchain/internal/contract"
	"parblockchain/internal/types"
)

func opsGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// A network with ops servers configured serves every endpoint, with the
// executor's pipeline and trace state visible after real commits.
func TestOpsServersEndToEnd(t *testing.T) {
	nw, _ := testNetwork(t, func(cfg *Config) {
		cfg.OpsAddrs = map[types.NodeID]string{
			"e1": "127.0.0.1:0",
			"o1": "127.0.0.1:0",
		}
		cfg.TraceRing = 4
	})
	client, err := nw.Client("c1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tx := client.Prepare("app1", contract.TransferOp("app1/alice", "app1/bob", 1))
		if _, err := client.Do(tx, 5*time.Second); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}

	exeSrv, ordSrv := nw.OpsServer("e1"), nw.OpsServer("o1")
	if exeSrv == nil || ordSrv == nil {
		t.Fatal("configured ops servers did not start")
	}
	if nw.OpsServer("e2") != nil {
		t.Fatal("e2 has no ops address, must have no server")
	}

	// Executor /metrics carries executor families and stage histograms.
	code, body := opsGet(t, exeSrv.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`parblockchain_executor_blocks_committed_total{node="e1"}`,
		`parblockchain_ledger_height{node="e1"}`,
		`parblockchain_block_stage_seconds_count{node="e1",stage="execute"}`,
		`parblockchain_transport_inmem_bytes_sent{node="e1"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("executor /metrics missing %s", want)
		}
	}

	// Executor /statusz reflects the committed height.
	code, body = opsGet(t, exeSrv.Addr(), "/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	var st struct {
		Height  uint64 `json:"height"`
		TipHash string `json:"tip_hash"`
		Syncing bool   `json:"syncing"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if st.Height == 0 || st.TipHash == "" || st.Syncing {
		t.Fatalf("/statusz = %+v", st)
	}

	if code, body = opsGet(t, exeSrv.Addr(), "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// /traces holds completed block records with stage breakdowns.
	code, body = opsGet(t, exeSrv.Addr(), "/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces status %d", code)
	}
	var traces []struct {
		Height uint64           `json:"height"`
		Stages map[string]int64 `json:"stage_ns"`
	}
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/traces not JSON: %v\n%s", err, body)
	}
	if len(traces) == 0 {
		t.Fatal("/traces empty after commits")
	}
	if _, ok := traces[0].Stages["execute"]; !ok {
		t.Fatalf("trace missing execute stage: %+v", traces[0])
	}

	// Orderer endpoints: metrics with orderer families, statusz, healthz.
	code, body = opsGet(t, ordSrv.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("orderer /metrics status %d", code)
	}
	if !strings.Contains(body, `parblockchain_orderer_blocks_cut_total{node="o1"}`) {
		t.Errorf("orderer /metrics missing blocks_cut:\n%s", body)
	}
	code, body = opsGet(t, ordSrv.Addr(), "/statusz")
	if code != http.StatusOK {
		t.Fatalf("orderer /statusz status %d", code)
	}
	var ost struct {
		BlocksCut uint64 `json:"blocks_cut"`
	}
	if err := json.Unmarshal([]byte(body), &ost); err != nil {
		t.Fatalf("orderer /statusz not JSON: %v", err)
	}
	if ost.BlocksCut == 0 {
		t.Fatal("orderer cut no blocks per /statusz")
	}
	if code, _ = opsGet(t, ordSrv.Addr(), "/healthz"); code != http.StatusOK {
		t.Fatalf("orderer /healthz = %d", code)
	}

	// pprof is mounted.
	if code, _ = opsGet(t, exeSrv.Addr(), "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof = %d", code)
	}
}

// Killing an executor closes its ops server and frees the port; a
// restart brings a fresh server whose registry samples the new
// instance, so metrics resume instead of freezing at the corpse.
func TestOpsServerSurvivesExecutorRestart(t *testing.T) {
	nw, _ := testNetwork(t, func(cfg *Config) {
		cfg.OpsAddrs = map[types.NodeID]string{"e2": "127.0.0.1:0"}
	})
	client, err := nw.Client("c1")
	if err != nil {
		t.Fatal(err)
	}
	tx := client.Prepare("app1", contract.TransferOp("app1/alice", "app1/bob", 1))
	if _, err := client.Do(tx, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	srv := nw.OpsServer("e2")
	if srv == nil {
		t.Fatal("no ops server for e2")
	}
	nw.KillExecutor(1)
	if nw.OpsServer("e2") != nil {
		t.Fatal("killed executor's ops server must be gone")
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", srv.Addr())); err == nil {
		t.Fatal("old ops port must be closed after kill")
	}
	if err := nw.RestartExecutor(1); err != nil {
		t.Fatal(err)
	}
	srv = nw.OpsServer("e2")
	if srv == nil {
		t.Fatal("restarted executor must get a fresh ops server")
	}
	code, body := opsGet(t, srv.Addr(), "/metrics")
	if code != http.StatusOK || !strings.Contains(body, `parblockchain_ledger_height{node="e2"}`) {
		t.Fatalf("restarted /metrics = %d:\n%s", code, body)
	}
}
