package state

import (
	"sort"
	"sync"

	"parblockchain/internal/types"
)

// BlockOverlay layers the in-flight results of one block's transactions
// over the committed store. During OXII execution a transaction must read
// the values written by its dependency-graph predecessors, which may be
// locally executed but not yet globally committed; the overlay provides
// that view without mutating the committed state until the whole block
// finalizes.
//
// Writes are tagged with the writing transaction's index in the block.
// Because any two writers of the same key conflict, the dependency graph
// orders them, and the overlay retains the highest-index write — exactly
// the value a sequential execution of the block would leave behind.
//
// BlockOverlay is safe for concurrent use: executor worker goroutines read
// while the commit path records results.
type BlockOverlay struct {
	base Reader

	mu     sync.RWMutex
	writes map[types.Key]overlayWrite
}

type overlayWrite struct {
	val []byte
	idx int
}

// NewBlockOverlay returns an empty overlay over the committed base state.
func NewBlockOverlay(base Reader) *BlockOverlay {
	return &BlockOverlay{base: base, writes: make(map[types.Key]overlayWrite, 64)}
}

// Get returns the key's value as visible to transactions of this block:
// the newest overlay write if present, otherwise the committed value.
func (o *BlockOverlay) Get(key types.Key) ([]byte, bool) {
	o.mu.RLock()
	w, ok := o.writes[key]
	o.mu.RUnlock()
	if ok {
		if w.val == nil {
			return nil, false // deletion
		}
		return w.val, true
	}
	return o.base.Get(key)
}

// Record merges a transaction's writes into the overlay. Writes from a
// lower-index transaction never clobber those of a higher-index one, which
// makes Record order-insensitive: results may arrive in any commit order
// and still converge to the sequential outcome.
func (o *BlockOverlay) Record(idx int, writes []types.KV) {
	if len(writes) == 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, kv := range writes {
		if cur, ok := o.writes[kv.Key]; ok && cur.idx >= idx {
			continue
		}
		o.writes[kv.Key] = overlayWrite{val: kv.Val, idx: idx}
	}
}

// Final returns the overlay's net effect as a deterministic, key-sorted
// batch, ready to apply to the committed store when the block finalizes.
func (o *BlockOverlay) Final() []types.KV {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]types.KV, 0, len(o.writes))
	for k, w := range o.writes {
		out = append(out, types.KV{Key: k, Val: w.val})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Len returns the number of distinct keys written in the overlay.
func (o *BlockOverlay) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.writes)
}

var _ Reader = (*BlockOverlay)(nil)
