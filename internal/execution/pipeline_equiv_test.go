package execution

import (
	"fmt"
	"testing"
	"time"

	"parblockchain/internal/contract"
	"parblockchain/internal/cryptoutil"
	"parblockchain/internal/depgraph"
	"parblockchain/internal/ledger"
	"parblockchain/internal/persist"
	"parblockchain/internal/state"
	"parblockchain/internal/transport"
	"parblockchain/internal/types"
	"parblockchain/internal/workload"
)

// This file property-tests the pipelining contract: streaming blocks
// through the executor with a window of in-flight blocks (cross-block
// stitching + chained overlays) must leave the ledger and the state
// bit-identical to the strict per-block barrier, which in turn equals
// the sequential OX-style execution of the same blocks. The suite runs
// under -race in CI with the rest of the package.

// equivApps is the application set of the equivalence traces; every app
// is agented on the single executor under test.
var equivApps = []types.AppID{"app1", "app2", "app3"}

// tracedBlocks derives a deterministic block sequence from the workload
// generator: the same seed always cuts the same chain of blocks.
func tracedBlocks(seed int64, contention float64, numBlocks, blockTxns int) ([][]*types.Transaction, []types.KV) {
	return tracedBlocksOpt(seed, contention, false, numBlocks, blockTxns)
}

// tracedBlocksOpt additionally selects the cross-application conflict
// placement (consecutive conflicting transactions alternate applications
// over shared hot records — the chains whose predecessors are non-local
// on a multi-executor deployment, which is what speculation bypasses).
func tracedBlocksOpt(seed int64, contention float64, crossApp bool,
	numBlocks, blockTxns int) ([][]*types.Transaction, []types.KV) {
	gen := workload.New(workload.Config{
		Apps:               equivApps,
		Contention:         contention,
		CrossApp:           crossApp,
		ColdAccountsPerApp: 512,
		Seed:               seed,
	})
	trace := gen.Trace("c1", numBlocks*blockTxns)
	for i, tx := range trace {
		tx.ID = types.TxID(fmt.Sprintf("eq-%d", i))
	}
	blocks := make([][]*types.Transaction, numBlocks)
	for b := range blocks {
		blocks[b] = trace[b*blockTxns : (b+1)*blockTxns]
	}
	return blocks, gen.Genesis()
}

// refResults executes the blocks strictly sequentially — the OX baseline
// — returning the final state hash and every block's per-transaction
// results.
func refResults(genesis []types.KV, blocks [][]*types.Transaction) (types.Hash, [][]types.TxResult) {
	store := state.NewKVStore()
	store.Apply(genesis)
	registry := contract.NewRegistry()
	for _, app := range equivApps {
		registry.Install(app, contract.NewAccounting())
	}
	all := make([][]types.TxResult, len(blocks))
	for b, txns := range blocks {
		overlay := state.NewBlockOverlay(store)
		results := make([]types.TxResult, len(txns))
		for i, tx := range txns {
			r := types.TxResult{TxID: tx.ID, Index: i}
			writes, err := registry.Execute(tx.App, overlay, tx.Op)
			if err != nil {
				r.Aborted = true
				r.AbortReason = err.Error()
			} else {
				r.Writes = writes
				overlay.Record(i, writes)
			}
			results[i] = r
		}
		store.Apply(overlay.Final())
		all[b] = results
	}
	return store.Hash(), all
}

// runPipelined streams the blocks through one executor at the given
// pipeline depth and returns the final state hash, the ledger, and the
// finalized results per block (in finalization order). A non-empty
// dataDir enables the durability subsystem (snapshot every 2 blocks, so
// short traces still exercise truncation) and, after the run, reopens
// the directory to assert crash recovery reproduces the final state.
// opts mutate the executor Config after the rig defaults (scheduler,
// prefetch, speculation knobs).
func runPipelined(t *testing.T, depth int, dataDir string, genesis []types.KV,
	blocks [][]*types.Transaction, opts ...func(*Config)) (types.Hash, *ledger.Ledger, [][]types.TxResult) {
	t.Helper()
	net := transport.NewInMemNetwork(transport.InMemConfig{})
	defer net.Close()
	execEP, _ := net.Endpoint("e1")
	orderer, _ := net.Endpoint("o1")
	registry := contract.NewRegistry()
	agents := make(map[types.AppID][]types.NodeID, len(equivApps))
	for _, app := range equivApps {
		registry.Install(app, contract.NewAccounting())
		agents[app] = []types.NodeID{"e1"}
	}
	var (
		store state.Backend
		led   *ledger.Ledger
		mgr   *persist.Manager
	)
	if dataDir != "" {
		var rec *persist.Recovered
		var err error
		mgr, rec, err = persist.Open(persist.Config{
			Dir:              dataDir,
			SnapshotInterval: 2,
			Logf:             t.Logf,
		}, genesis)
		if err != nil {
			t.Fatal(err)
		}
		store, led = rec.Store, rec.Ledger
	} else {
		store = state.NewKVStore()
		store.Apply(genesis)
		led = ledger.New()
	}
	commits := make(chan []types.TxResult, len(blocks))
	cfg := Config{
		ID:            "e1",
		Endpoint:      execEP,
		Registry:      registry,
		AgentsOf:      agents,
		OrderQuorum:   1,
		Executors:     []types.NodeID{"e1"},
		Store:         store,
		Ledger:        led,
		Workers:       6,
		PipelineDepth: depth,
		Signer:        cryptoutil.NoopSigner{NodeID: "e1"},
		Verifier:      cryptoutil.NoopVerifier{},
		Persist:       mgr,
		OnCommit: func(_ *types.Block, results []types.TxResult) {
			commits <- results
		},
		Logf: func(string, ...any) {},
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	store = cfg.Store // an opt may swap the backend (tiered suite)
	exec := New(cfg)
	exec.Start()
	defer exec.Stop()

	var prev types.Hash
	for num, txns := range blocks {
		block := types.NewBlock(uint64(num), prev, txns)
		prev = block.Hash()
		sets := make([]depgraph.RWSet, len(txns))
		for i, tx := range txns {
			sets[i] = depgraph.RWSet{
				Reads:  append([]string(nil), tx.Op.Reads...),
				Writes: append([]string(nil), tx.Op.Writes...),
			}
			sets[i].Normalize()
		}
		msg := &types.NewBlockMsg{
			Block:   block,
			Graph:   depgraph.Build(sets, depgraph.Standard),
			Apps:    block.Apps(),
			Orderer: "o1",
		}
		if err := orderer.Send("e1", msg); err != nil {
			t.Fatal(err)
		}
	}
	finalized := make([][]types.TxResult, 0, len(blocks))
	for range blocks {
		select {
		case results := <-commits:
			finalized = append(finalized, results)
		case <-time.After(30 * time.Second):
			t.Fatalf("depth %d: block %d did not finalize", depth, len(finalized))
		}
	}
	hash := store.Hash()
	if mgr != nil {
		// Every block is externalized, so every block is durable: a
		// recovery from this directory must land on the same state.
		exec.Stop()
		if err := mgr.Close(); err != nil {
			t.Fatal(err)
		}
		verifyRecovery(t, dataDir, genesis, hash, led)
	}
	return hash, led, finalized
}

// allSchedulers enumerates every dispatch scheduler; the equivalence
// suites run under each one — a scheduler is only admissible if it is
// bit-identical to the sequential baseline on every path.
var allSchedulers = []SchedulerKind{SchedFIFO, SchedCriticalPath, SchedLoadBalanced}

// withScheduler returns a Config option selecting a scheduler, plus a
// small prefetch pool so the prefetch stage is exercised under every
// scheduler (prefetch must be invisible to results by construction).
func withScheduler(sched SchedulerKind) func(*Config) {
	return func(c *Config) {
		c.Scheduler = sched
		c.PrefetchWorkers = 2
	}
}

// TestPipelineEquivalence asserts, for randomized traces at several
// contention levels, pipeline depths 1/2/4/8, and every scheduler, that
// the pipelined executor's final state hash, ledger chain, and
// per-transaction results are bit-identical to the sequential OX
// baseline.
func TestPipelineEquivalence(t *testing.T) {
	const (
		numBlocks = 6
		blockTxns = 20
	)
	depths := []int{1, 2, 4, 8}
	for _, contention := range []float64{0, 0.4, 1.0} {
		for _, sched := range allSchedulers {
			contention, sched := contention, sched
			t.Run(fmt.Sprintf("contention=%.0f%%/%s", contention*100, sched), func(t *testing.T) {
				testPipelineEquivalence(t, contention, sched, depths, numBlocks, blockTxns)
			})
		}
	}
}

func testPipelineEquivalence(t *testing.T, contention float64, sched SchedulerKind,
	depths []int, numBlocks, blockTxns int) {
	seed := int64(1000 + int(contention*100))
	blocks, genesis := tracedBlocks(seed, contention, numBlocks, blockTxns)
	wantHash, wantResults := refResults(genesis, blocks)

	var wantChain types.Hash
	for _, depth := range depths {
		gotHash, led, finalized := runPipelined(t, depth, "", genesis, blocks, withScheduler(sched))
		if gotHash != wantHash {
			t.Fatalf("depth %d: state hash diverged from sequential baseline", depth)
		}
		if led.Height() != uint64(numBlocks) {
			t.Fatalf("depth %d: ledger height = %d, want %d", depth, led.Height(), numBlocks)
		}
		if err := led.Verify(); err != nil {
			t.Fatalf("depth %d: ledger chain invalid: %v", depth, err)
		}
		if wantChain.IsZero() {
			wantChain = led.LastHash()
		} else if led.LastHash() != wantChain {
			t.Fatalf("depth %d: ledger chain diverged across depths", depth)
		}
		for b, results := range finalized {
			if len(results) != len(wantResults[b]) {
				t.Fatalf("depth %d block %d: %d results, want %d",
					depth, b, len(results), len(wantResults[b]))
			}
			for i := range results {
				if results[i].Digest() != wantResults[b][i].Digest() {
					t.Fatalf("depth %d block %d tx %d: result diverged from sequential baseline (aborted=%v/%v)",
						depth, b, i, results[i].Aborted, wantResults[b][i].Aborted)
				}
			}
			// Cross-check the ledger entry carries the same results.
			entry, err := led.Get(uint64(b))
			if err != nil {
				t.Fatal(err)
			}
			for i := range entry.Results {
				if entry.Results[i].Digest() != wantResults[b][i].Digest() {
					t.Fatalf("depth %d block %d tx %d: ledger result diverged", depth, b, i)
				}
			}
		}
	}

	// Durability on: the WAL append + group fsync at the finalize
	// boundary must leave ledger and state bit-identical to the
	// in-memory path at the barrier depth and a pipelined depth
	// (runPipelined additionally asserts recovery reproduces it).
	for _, depth := range []int{1, 4} {
		gotHash, led, _ := runPipelined(t, depth, t.TempDir(), genesis, blocks, withScheduler(sched))
		if gotHash != wantHash {
			t.Fatalf("durable depth %d: state hash diverged from sequential baseline", depth)
		}
		if led.LastHash() != wantChain {
			t.Fatalf("durable depth %d: ledger chain diverged", depth)
		}
	}
}
