package ordering

import (
	"fmt"

	"parblockchain/internal/telemetry"
)

// RegisterTelemetry exposes the orderer's counters on reg. All series
// sample atomics, so a scrape never touches the delivery goroutine.
func (o *Orderer) RegisterTelemetry(reg *telemetry.Registry, labels telemetry.Labels) {
	if reg == nil {
		return
	}
	reg.CounterFunc("parblockchain_orderer_blocks_cut_total",
		"Blocks produced by this orderer.", labels, o.stats.blocksCut.Load)
	reg.CounterFunc("parblockchain_orderer_txns_ordered_total",
		"Transactions placed into blocks.", labels, o.stats.txnsOrdered.Load)
	reg.CounterFunc("parblockchain_orderer_requests_rejected_total",
		"Requests dropped by signature/ACL checks or non-canonical access sets.", labels,
		o.stats.requestsRejected.Load)
	reg.CounterFunc("parblockchain_orderer_graph_build_nanos_total",
		"Estimated nanoseconds spent generating dependency graphs (sampled).", labels,
		o.stats.graphBuildNanos.Load)
	reg.CounterFunc("parblockchain_orderer_segments_sent_total",
		"BlockSegmentMsg multicasts (streaming mode).", labels, o.stats.segmentsSent.Load)
	if o.dlog != nil {
		reg.GaugeFunc("parblockchain_orderer_durable_height",
			"Next block number covered by a fsynced cut record; a restart resumes cutting here.",
			labels, func() float64 { return float64(o.stats.durableHeight.Load()) })
		reg.CounterFunc("parblockchain_orderer_log_appends_total",
			"Records appended to the orderer's durable log (entries + cuts).", labels,
			func() uint64 { return o.dlog.Stats().Appends })
		reg.CounterFunc("parblockchain_orderer_log_fsyncs_total",
			"fsync batches issued by the orderer's durable log.", labels,
			func() uint64 { return o.dlog.Stats().Syncs })
		reg.CounterFunc("parblockchain_orderer_recovered_entries_total",
			"Consensus entries replayed from the durable log at startup.", labels,
			o.stats.recoveredEntries.Load)
	}
}

// Status is the orderer's /statusz payload, assembled from the atomic
// counters (the assembly state is owned by the delivery goroutine and
// deliberately not exposed).
type Status struct {
	BlocksCut        uint64 `json:"blocks_cut"`
	TxnsOrdered      uint64 `json:"txns_ordered"`
	RequestsRejected uint64 `json:"requests_rejected"`
	SegmentsSent     uint64 `json:"segments_sent"`
	GraphBuildMs     int64  `json:"graph_build_ms"`
	DurableHeight    uint64 `json:"durable_height"`
	RecoveredEntries uint64 `json:"recovered_entries"`
	LogAppends       uint64 `json:"log_appends"`
	LogFsyncs        uint64 `json:"log_fsyncs"`
}

// Status snapshots the orderer for the ops server.
func (o *Orderer) Status() Status {
	s := o.Stats()
	return Status{
		BlocksCut:        s.BlocksCut,
		TxnsOrdered:      s.TxnsOrdered,
		RequestsRejected: s.RequestsRejected,
		SegmentsSent:     s.SegmentsSent,
		GraphBuildMs:     int64(s.GraphBuildNanos / 1e6),
		DurableHeight:    s.DurableHeight,
		RecoveredEntries: s.RecoveredEntries,
		LogAppends:       s.LogAppends,
		LogFsyncs:        s.LogSyncs,
	}
}

// Healthy reports liveness for /healthz: an orderer is healthy while its
// endpoint still accepts work (consensus stalls surface on the executor
// side, where the stall watchdog owns the judgement).
func (o *Orderer) Healthy() error {
	select {
	case <-o.stopCh:
		return fmt.Errorf("orderer stopped")
	default:
		return nil
	}
}
