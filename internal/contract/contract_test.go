package contract

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"parblockchain/internal/state"
	"parblockchain/internal/types"
)

func storeWith(t *testing.T, kvs ...types.KV) *state.KVStore {
	t.Helper()
	s := state.NewKVStore()
	s.Apply(kvs)
	return s
}

func balanceOf(t *testing.T, view state.Reader, key types.Key) int64 {
	t.Helper()
	raw, ok := view.Get(key)
	if !ok {
		t.Fatalf("account %s missing", key)
	}
	v, err := Balance(raw)
	if err != nil {
		t.Fatalf("Balance(%s): %v", key, err)
	}
	return v
}

func apply(s *state.KVStore, writes []types.KV) { s.Apply(writes) }

func TestAccountingTransfer(t *testing.T) {
	s := storeWith(t,
		types.KV{Key: "alice", Val: EncodeBalance(100)},
		types.KV{Key: "bob", Val: EncodeBalance(5)},
	)
	writes, err := NewAccounting().Execute(s, TransferOp("alice", "bob", 30))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	apply(s, writes)
	if got := balanceOf(t, s, "alice"); got != 70 {
		t.Fatalf("alice = %d, want 70", got)
	}
	if got := balanceOf(t, s, "bob"); got != 35 {
		t.Fatalf("bob = %d, want 35", got)
	}
}

func TestAccountingTransferToNewAccount(t *testing.T) {
	s := storeWith(t, types.KV{Key: "alice", Val: EncodeBalance(100)})
	writes, err := NewAccounting().Execute(s, TransferOp("alice", "new", 10))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	apply(s, writes)
	if got := balanceOf(t, s, "new"); got != 10 {
		t.Fatalf("new = %d, want 10", got)
	}
}

func TestAccountingAborts(t *testing.T) {
	s := storeWith(t, types.KV{Key: "alice", Val: EncodeBalance(100)})
	acct := NewAccounting()
	cases := []struct {
		name string
		op   types.Operation
	}{
		{"insufficient funds", TransferOp("alice", "bob", 1000)},
		{"unknown source", TransferOp("ghost", "bob", 1)},
		{"self transfer", TransferOp("alice", "alice", 1)},
		{"zero amount", TransferOp("alice", "bob", 0)},
		{"negative amount", TransferOp("alice", "bob", -5)},
		{"bad method", types.Operation{Method: "mint", Params: []string{"alice"}}},
		{"bad param count", types.Operation{Method: "transfer", Params: []string{"alice"}}},
		{"bad amount format", types.Operation{Method: "transfer", Params: []string{"alice", "bob", "xx"}}},
		{"deposit zero", types.Operation{Method: "deposit", Params: []string{"alice", "0"}}},
		{"open negative", types.Operation{Method: "open", Params: []string{"x", "-1"}}},
	}
	for _, c := range cases {
		if _, err := acct.Execute(s, c.op); !errors.Is(err, ErrAbort) {
			t.Errorf("%s: err = %v, want ErrAbort", c.name, err)
		}
	}
}

func TestAccountingOpenAndDeposit(t *testing.T) {
	s := state.NewKVStore()
	acct := NewAccounting()
	writes, err := acct.Execute(s, OpenOp("acct", 50))
	if err != nil {
		t.Fatal(err)
	}
	apply(s, writes)
	writes, err = acct.Execute(s, DepositOp("acct", 25))
	if err != nil {
		t.Fatal(err)
	}
	apply(s, writes)
	if got := balanceOf(t, s, "acct"); got != 75 {
		t.Fatalf("balance = %d, want 75", got)
	}
	// Deposit to a non-existent account starts from zero.
	writes, err = acct.Execute(s, DepositOp("fresh", 5))
	if err != nil {
		t.Fatal(err)
	}
	apply(s, writes)
	if got := balanceOf(t, s, "fresh"); got != 5 {
		t.Fatalf("fresh = %d, want 5", got)
	}
}

func TestAccountingDeterminism(t *testing.T) {
	s1 := storeWith(t, types.KV{Key: "a", Val: EncodeBalance(10)})
	s2 := storeWith(t, types.KV{Key: "a", Val: EncodeBalance(10)})
	op := TransferOp("a", "b", 3)
	w1, err1 := NewAccounting().Execute(s1, op)
	w2, err2 := NewAccounting().Execute(s2, op)
	if (err1 == nil) != (err2 == nil) {
		t.Fatal("determinism violated in error outcome")
	}
	r1 := types.TxResult{TxID: "t", Writes: w1}
	r2 := types.TxResult{TxID: "t", Writes: w2}
	if r1.Digest() != r2.Digest() {
		t.Fatal("identical executions must produce matching result digests")
	}
}

func TestTransferOpDeclaredSets(t *testing.T) {
	op := TransferOp("b", "a", 1)
	if len(op.Reads) != 2 || op.Reads[0] != "a" || op.Reads[1] != "b" {
		t.Fatalf("reads = %v, want sorted [a b]", op.Reads)
	}
	if len(op.Writes) != 2 {
		t.Fatalf("writes = %v", op.Writes)
	}
}

func TestKVContract(t *testing.T) {
	s := state.NewKVStore()
	kv := NewKV()
	writes, err := kv.Execute(s, PutOp("k", "hello"))
	if err != nil {
		t.Fatal(err)
	}
	apply(s, writes)
	writes, err = kv.Execute(s, AppendOp("k", " world"))
	if err != nil {
		t.Fatal(err)
	}
	apply(s, writes)
	if v, _ := s.Get("k"); string(v) != "hello world" {
		t.Fatalf("k = %q", v)
	}
	writes, err = kv.Execute(s, DelOp("k"))
	if err != nil {
		t.Fatal(err)
	}
	apply(s, writes)
	if _, ok := s.Get("k"); ok {
		t.Fatal("k should be deleted")
	}
	if _, err := kv.Execute(s, types.Operation{Method: "nope"}); !errors.Is(err, ErrAbort) {
		t.Fatal("unknown method must abort")
	}
}

func TestSupplyChainLifecycle(t *testing.T) {
	s := state.NewKVStore()
	sc := NewSupplyChain()
	steps := []struct {
		op      types.Operation
		wantErr bool
		wantSub string
	}{
		{CreateItemOp("item1", "producer"), false, "producer|created"},
		{CreateItemOp("item1", "producer"), true, ""}, // duplicate create
		{ShipOp("item1", "producer", "shipper"), false, "shipper|in-transit"},
		{ShipOp("item1", "producer", "shipper"), true, ""}, // wrong holder
		{ReceiveOp("item1", "warehouse"), true, ""},        // addressed to shipper
		{ReceiveOp("item1", "shipper"), false, "shipper|delivered"},
		{ReceiveOp("item1", "shipper"), true, ""}, // already delivered
	}
	for i, step := range steps {
		writes, err := sc.Execute(s, step.op)
		if step.wantErr {
			if !errors.Is(err, ErrAbort) {
				t.Fatalf("step %d: err = %v, want ErrAbort", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		apply(s, writes)
		raw, _ := s.Get("item1")
		if !strings.HasPrefix(string(raw), step.wantSub) {
			t.Fatalf("step %d: item = %q, want prefix %q", i, raw, step.wantSub)
		}
	}
	// Hop count accumulated across the three successful operations.
	raw, _ := s.Get("item1")
	parts := strings.Split(string(raw), "|")
	if hops, _ := strconv.Atoi(parts[2]); hops != 3 {
		t.Fatalf("hops = %d, want 3", hops)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Lookup("app1"); ok {
		t.Fatal("empty registry should miss")
	}
	r.Install("app1", NewAccounting())
	if _, ok := r.Lookup("app1"); !ok {
		t.Fatal("installed contract should be found")
	}
	if apps := r.Apps(); len(apps) != 1 || apps[0] != "app1" {
		t.Fatalf("Apps = %v", apps)
	}
	s := storeWith(t, types.KV{Key: "a", Val: EncodeBalance(10)})
	if _, err := r.Execute("app1", s, TransferOp("a", "b", 1)); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if _, err := r.Execute("missing", s, TransferOp("a", "b", 1)); err == nil {
		t.Fatal("missing app must error")
	}
}

func TestCostModelSleep(t *testing.T) {
	model := CostModel{Cost: 20 * time.Millisecond}
	start := time.Now()
	model.Apply()
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("sleep cost too short: %v", elapsed)
	}
}

func TestCostModelSpin(t *testing.T) {
	model := CostModel{Cost: 5 * time.Millisecond, SpinFraction: 1.0}
	start := time.Now()
	model.Apply()
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("spin cost too short: %v", elapsed)
	}
}

func TestWithCost(t *testing.T) {
	s := storeWith(t, types.KV{Key: "a", Val: EncodeBalance(10)})
	wrapped := WithCost(NewAccounting(), CostModel{Cost: 10 * time.Millisecond})
	start := time.Now()
	if _, err := wrapped.Execute(s, TransferOp("a", "b", 1)); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 8*time.Millisecond {
		t.Fatal("cost wrapper did not delay execution")
	}
	// Zero cost returns the inner contract unchanged.
	if got := WithCost(NewAccounting(), CostModel{}); got == nil {
		t.Fatal("zero-cost wrapper must return a contract")
	}
}

func TestBalanceCodec(t *testing.T) {
	for _, v := range []int64{0, 1, -7, 1 << 40} {
		got, err := Balance(EncodeBalance(v))
		if err != nil || got != v {
			t.Fatalf("roundtrip %d: got %d err %v", v, got, err)
		}
	}
	if _, err := Balance([]byte("garbage")); err == nil {
		t.Fatal("garbage balance must error")
	}
}
