// This file implements the pluggable work scheduler between dispatch
// and the worker pool. The paper's executor (and this repo's, before
// the Config.Scheduler knob) drains ready transactions in discovery
// order; on the skewed graphs high-contention workloads produce that
// leaves cores idle behind long dependency chains while short
// independent work waits its turn. The three schedulers:
//
//   - fifo: discovery order, the equivalence baseline. Exactly the old
//     single eventq work queue.
//   - critical-path: max-height-first. Ready transactions pop in
//     descending critical-path height (the longest dependency chain
//     hanging below them, maintained incrementally across blocks by
//     depgraph.HeightTracker), out-degree breaking ties, discovery
//     order breaking those. The tallest ready transaction heads the
//     longest remaining chain, so running it first keeps the chain's
//     core busy while shorter independent work fills the other cores.
//   - load-balanced: QueCC-style per-worker queues. Ready transactions
//     hash to a worker by their first write key, so same-key work lands
//     on the same core (warm cache, no ping-pong); idle workers steal
//     from the longest backlog so no core stalls while another has a
//     queue.
//
// Every scheduler preserves the eventq contract the worker pool was
// built on: non-blocking Push, blocking Pop, Close wakes all consumers
// and lets them drain remaining items. Schedulers never remove items:
// epoch-tagged re-dispatch under speculation cascades means a stale
// item can sit in a queue, get popped, execute, and have its result
// disowned by the actor's epoch check — exactly as with the FIFO queue.
// Ordering of ready transactions is the one freedom Algorithm 1 leaves
// the executor, which is why every scheduler is bit-identical to the
// sequential baseline (see TestSchedulerEquivalence).

package execution

import (
	"fmt"
	"hash/maphash"
	"sync"

	"parblockchain/internal/eventq"
	"parblockchain/internal/types"
)

// SchedulerKind selects the dispatch scheduler. The zero value is FIFO,
// the paper's discovery-order behavior.
type SchedulerKind uint8

const (
	// SchedFIFO executes ready transactions in discovery order.
	SchedFIFO SchedulerKind = iota
	// SchedCriticalPath executes the ready transaction with the longest
	// downstream dependency chain first.
	SchedCriticalPath
	// SchedLoadBalanced hashes ready transactions to per-worker queues
	// by first write key, with work stealing.
	SchedLoadBalanced
)

// SchedulerNames lists the accepted ParseScheduler spellings, for flag
// help and config validation messages.
var SchedulerNames = []string{"fifo", "critical-path", "load-balanced"}

// String returns the canonical knob spelling.
func (k SchedulerKind) String() string {
	switch k {
	case SchedCriticalPath:
		return "critical-path"
	case SchedLoadBalanced:
		return "load-balanced"
	default:
		return "fifo"
	}
}

// ParseScheduler maps a knob string to its SchedulerKind. The empty
// string selects FIFO so zero-valued configs keep the old behavior.
func ParseScheduler(name string) (SchedulerKind, error) {
	switch name {
	case "", "fifo":
		return SchedFIFO, nil
	case "critical-path":
		return SchedCriticalPath, nil
	case "load-balanced":
		return SchedLoadBalanced, nil
	default:
		return SchedFIFO, fmt.Errorf("unknown scheduler %q (want one of %v)", name, SchedulerNames)
	}
}

// scheduler is the ready queue between the actor loop's dispatch and
// the worker pool. Push never blocks and is a no-op after Close; Pop
// blocks until an item is available or the queue is closed and drained.
// prio orders critical-path popping (higher first) and key routes
// load-balanced placement; each implementation ignores the hints it
// does not use.
type scheduler interface {
	Push(item workItem, prio int64, key string)
	Pop(worker int) (workItem, bool)
	Close()
	Len() int
}

// newScheduler builds the scheduler for a kind and worker-pool size.
func newScheduler(kind SchedulerKind, workers int) scheduler {
	switch kind {
	case SchedCriticalPath:
		return newHeapSched()
	case SchedLoadBalanced:
		return newLBSched(workers)
	default:
		return fifoSched{q: eventq.New[workItem]()}
	}
}

// Claim-cell states for the critical-path scheduler's lazy priority
// refresh. Every heap entry carries a cell created at push time; the
// cell arbitrates, with a single CAS, between the worker that pops the
// entry and the actor that wants to re-push the same transaction at a
// fresher priority. A cell moves out of cellQueued exactly once, so a
// transaction has at most one live (poppable) entry at any time no
// matter how many stale duplicates still sit in the heap.
const (
	cellQueued int32 = iota // entry poppable at its push-time priority
	cellStale               // superseded by a re-push; skip when popped
	cellPopped              // claimed by a worker
)

// schedPriority packs a transaction's critical-path height and
// out-degree into one comparable key: height dominates, out-degree
// (clamped) breaks ties toward the transaction that unlocks more work.
func schedPriority(height, outDeg int32) int64 {
	const degBits = 20
	d := int64(outDeg)
	if d >= 1<<degBits {
		d = 1<<degBits - 1
	}
	return int64(height)<<degBits | d
}

// firstWriteKey is the load-balancing routing key: the transaction's
// first declared write (falling back to its first read for read-only
// transactions), canonical after Normalize, so every transaction
// touching a hot record routes to the same worker.
func firstWriteKey(op *types.Operation) string {
	if len(op.Writes) > 0 {
		return op.Writes[0]
	}
	if len(op.Reads) > 0 {
		return op.Reads[0]
	}
	return ""
}

// fifoSched adapts the original eventq work queue to the scheduler
// interface.
type fifoSched struct {
	q *eventq.Queue[workItem]
}

func (s fifoSched) Push(item workItem, _ int64, _ string) { s.q.Push(item) }
func (s fifoSched) Pop(int) (workItem, bool)              { return s.q.Pop() }
func (s fifoSched) Close()                                { s.q.Close() }
func (s fifoSched) Len() int                              { return s.q.Len() }

// heapSched is the critical-path scheduler: a binary max-heap on
// (priority, FIFO sequence), O(log n) push and pop under one mutex.
type heapSched struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   []heapEntry
	seq    uint64
	closed bool
}

type heapEntry struct {
	item workItem
	prio int64
	seq  uint64
}

func newHeapSched() *heapSched {
	s := &heapSched{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// before orders the heap: higher priority first, earlier dispatch
// breaking ties so equal-priority work stays FIFO.
func (a heapEntry) before(b heapEntry) bool {
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.seq < b.seq
}

func (s *heapSched) Push(item workItem, prio int64, _ string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.heap = append(s.heap, heapEntry{item: item, prio: prio, seq: s.seq})
	s.seq++
	// Sift up.
	for i := len(s.heap) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.heap[i].before(s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
	s.cond.Signal()
}

func (s *heapSched) Pop(int) (workItem, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(s.heap) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.heap) == 0 {
			return workItem{}, false
		}
		top := s.heap[0].item
		last := len(s.heap) - 1
		s.heap[0] = s.heap[last]
		s.heap[last] = heapEntry{} // release the *blockState reference
		s.heap = s.heap[:last]
		// Sift down.
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			best := i
			if l < last && s.heap[l].before(s.heap[best]) {
				best = l
			}
			if r < last && s.heap[r].before(s.heap[best]) {
				best = r
			}
			if best == i {
				break
			}
			s.heap[i], s.heap[best] = s.heap[best], s.heap[i]
			i = best
		}
		// Claim the entry. A failed CAS means the actor marked it stale
		// (the transaction was re-pushed at a fresher priority); drop it
		// and keep popping — the live duplicate is still in the heap.
		if top.cell == nil || top.cell.CompareAndSwap(cellQueued, cellPopped) {
			return top, true
		}
	}
}

func (s *heapSched) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
}

func (s *heapSched) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.heap)
}

// lbSched is the load-balanced scheduler: one FIFO per worker, items
// routed by hashing their first write key, idle workers stealing from
// the longest backlog. One mutex guards all queues — the protected
// sections are a few slice operations, far cheaper than the per-item
// contract execution they schedule.
type lbSched struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues []lbQueue
	seed   maphash.Seed
	closed bool
}

type lbQueue struct {
	items []workItem
	head  int
}

func (q *lbQueue) len() int { return len(q.items) - q.head }

func (q *lbQueue) popFront() workItem {
	item := q.items[q.head]
	q.items[q.head] = workItem{}
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return item
}

func (q *lbQueue) popBack() workItem {
	last := len(q.items) - 1
	item := q.items[last]
	q.items[last] = workItem{}
	q.items = q.items[:last]
	return item
}

func newLBSched(workers int) *lbSched {
	s := &lbSched{queues: make([]lbQueue, workers), seed: maphash.MakeSeed()}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *lbSched) Push(item workItem, _ int64, key string) {
	w := int(maphash.String(s.seed, key) % uint64(len(s.queues)))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.queues[w].items = append(s.queues[w].items, item)
	// One Signal suffices even though the woken worker may not be w:
	// any idle worker finds the item by stealing.
	s.cond.Signal()
}

func (s *lbSched) Pop(worker int) (workItem, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if q := &s.queues[worker]; q.len() > 0 {
			return q.popFront(), true
		}
		// Own queue empty: steal from the back of the longest backlog,
		// leaving the victim's front (its oldest same-key run) in place.
		victim, best := -1, 0
		for i := range s.queues {
			if n := s.queues[i].len(); n > best {
				victim, best = i, n
			}
		}
		if victim >= 0 {
			return s.queues[victim].popBack(), true
		}
		if s.closed {
			return workItem{}, false
		}
		s.cond.Wait()
	}
}

func (s *lbSched) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
}

func (s *lbSched) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for i := range s.queues {
		total += s.queues[i].len()
	}
	return total
}
