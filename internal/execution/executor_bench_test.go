package execution

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"parblockchain/internal/contract"
	"parblockchain/internal/cryptoutil"
	"parblockchain/internal/depgraph"
	"parblockchain/internal/ledger"
	"parblockchain/internal/persist"
	"parblockchain/internal/state"
	"parblockchain/internal/transport"
	"parblockchain/internal/types"
)

// benchRig is a single-executor pipeline fed raw NEWBLOCK messages — the
// end-to-end hot path (graph-driven scheduling, worker-pool execution
// against the overlay, commit, store apply) without consensus or network
// latency in the way.
type benchRig struct {
	net     *transport.InMemNetwork
	exec    *Executor
	store   state.Backend
	mgr     *persist.Manager
	orderer transport.Endpoint
	commits chan struct{}
	prev    types.Hash
	next    uint64
}

func newBenchRig(b *testing.B, workers int) *benchRig {
	b.Helper()
	return newBenchRigDepth(b, workers, 1, contract.NewKV())
}

// newBenchRigDepth builds a rig with an explicit pipeline depth and
// contract, for the cross-block pipelining benchmarks. opts mutate the
// executor Config after the rig defaults (scheduler, prefetch).
func newBenchRigDepth(b *testing.B, workers, depth int, app1 contract.Contract,
	opts ...func(*Config)) *benchRig {
	b.Helper()
	return newBenchRigDurable(b, workers, depth, app1, "", opts...)
}

// newBenchRigDurable additionally mounts the durability subsystem at
// dataDir (empty = in-memory), for the WAL-on-the-hot-path benchmarks.
func newBenchRigDurable(b *testing.B, workers, depth int, app1 contract.Contract,
	dataDir string, opts ...func(*Config)) *benchRig {
	b.Helper()
	r := &benchRig{commits: make(chan struct{}, 64)}
	r.net = transport.NewInMemNetwork(transport.InMemConfig{})
	execEP, _ := r.net.Endpoint("e1")
	r.orderer, _ = r.net.Endpoint("o1")
	registry := contract.NewRegistry()
	registry.Install("app1", app1)
	led := ledger.New()
	r.store = state.NewKVStore()
	if dataDir != "" {
		mgr, rec, err := persist.Open(persist.Config{
			Dir:  dataDir,
			Logf: func(string, ...any) {},
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		r.mgr = mgr
		r.store, led = rec.Store, rec.Ledger
		// The benchmark framework reruns the function with growing b.N on
		// the same data directory; like any restarted node, the rig must
		// resume feeding blocks at its recovered height (a fresh rig that
		// kept announcing from block 0 would have everything dropped as
		// already committed and hang).
		r.next = led.Height()
		r.prev = led.LastHash()
	}
	cfg := Config{
		ID:            "e1",
		Endpoint:      execEP,
		Registry:      registry,
		AgentsOf:      map[types.AppID][]types.NodeID{"app1": {"e1"}},
		OrderQuorum:   1,
		Executors:     []types.NodeID{"e1"},
		Store:         r.store,
		Ledger:        led,
		Workers:       workers,
		PipelineDepth: depth,
		Signer:        cryptoutil.NoopSigner{NodeID: "e1"},
		Verifier:      cryptoutil.NoopVerifier{},
		Persist:       r.mgr,
		OnCommit:      func(*types.Block, []types.TxResult) { r.commits <- struct{}{} },
		Logf:          func(string, ...any) {},
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	r.store = cfg.Store // an opt may swap the backend (tiered benchmarks)
	r.exec = New(cfg)
	r.exec.Start()
	b.Cleanup(func() {
		r.exec.Stop()
		if r.mgr != nil {
			if err := r.mgr.Close(); err != nil {
				b.Fatal(err)
			}
		}
		r.net.Close()
	})
	return r
}

// runBlock announces one block and waits for it to finalize.
func (r *benchRig) runBlock(b *testing.B, txns []*types.Transaction) {
	block := types.NewBlock(r.next, r.prev, txns)
	r.next++
	r.prev = block.Hash()
	sets := make([]depgraph.RWSet, len(txns))
	for i, tx := range txns {
		sets[i] = depgraph.RWSet{Reads: tx.Op.Reads, Writes: tx.Op.Writes}
		sets[i].Normalize()
	}
	msg := &types.NewBlockMsg{
		Block:   block,
		Graph:   depgraph.Build(sets, depgraph.Standard),
		Apps:    block.Apps(),
		Orderer: "o1",
	}
	if err := r.orderer.Send("e1", msg); err != nil {
		b.Fatal(err)
	}
	<-r.commits
}

// runBlocks streams a batch of blocks into the executor without waiting
// between them, then waits for all of them to finalize — the driving
// pattern the cross-block pipeline exists for.
func (r *benchRig) runBlocks(b *testing.B, blocks [][]*types.Transaction) {
	for _, txns := range blocks {
		block := types.NewBlock(r.next, r.prev, txns)
		r.next++
		r.prev = block.Hash()
		sets := make([]depgraph.RWSet, len(txns))
		for i, tx := range txns {
			sets[i] = depgraph.RWSet{Reads: tx.Op.Reads, Writes: tx.Op.Writes}
			sets[i].Normalize()
		}
		msg := &types.NewBlockMsg{
			Block:   block,
			Graph:   depgraph.Build(sets, depgraph.Standard),
			Apps:    block.Apps(),
			Orderer: "o1",
		}
		if err := r.orderer.Send("e1", msg); err != nil {
			b.Fatal(err)
		}
	}
	for range blocks {
		<-r.commits
	}
}

func independentBlock(blockNum, n int) []*types.Transaction {
	txns := make([]*types.Transaction, n)
	for i := range txns {
		key := types.Key(fmt.Sprintf("acct-%d", i))
		tx := &types.Transaction{
			App: "app1", Client: "c1", ClientTS: uint64(blockNum*n + i + 1),
			Op: contract.PutOp(key, fmt.Sprintf("v%d", blockNum)),
		}
		tx.ID = types.TxID(fmt.Sprintf("tx-%d-%d", blockNum, i))
		txns[i] = tx
	}
	return txns
}

func chainedBlock(blockNum, n int) []*types.Transaction {
	txns := make([]*types.Transaction, n)
	for i := range txns {
		tx := &types.Transaction{
			App: "app1", Client: "c1", ClientTS: uint64(blockNum*n + i + 1),
			Op: contract.AppendOp("hot", "x"),
		}
		tx.ID = types.TxID(fmt.Sprintf("tx-%d-%d", blockNum, i))
		txns[i] = tx
	}
	return txns
}

// BenchmarkExecutorIndependentBlock measures end-to-end finalization of a
// 200-transaction block with an empty dependency graph: the fully
// parallel case the sharded store and lock-free overlay exist for. One
// iteration = one block.
func BenchmarkExecutorIndependentBlock(b *testing.B) {
	const blockTxns = 200
	r := newBenchRig(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.runBlock(b, independentBlock(i, blockTxns))
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*blockTxns)/secs, "tx/s")
	}
}

// BenchmarkExecutorChainedBlock is the fully sequential counterpoint: a
// 200-transaction dependency chain on one key, bounding the scheduling
// overhead per dependency edge.
func BenchmarkExecutorChainedBlock(b *testing.B) {
	const blockTxns = 200
	r := newBenchRig(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.runBlock(b, chainedBlock(i, blockTxns))
	}
}

// crossChainedBlocks builds blocks that chain across block boundaries:
// transaction 0 of every block appends to a shared "link" key, so each
// block carries a stitched dependency on its predecessor, while the rest
// of the block is a serial append chain on a per-block key. Under the
// per-block barrier the per-block chains execute one block at a time;
// with a deeper pipeline the chains of consecutive in-flight blocks run
// concurrently as soon as the link transaction's predecessor executes.
func crossChainedBlocks(startBlock, numBlocks, n int) [][]*types.Transaction {
	blocks := make([][]*types.Transaction, numBlocks)
	for bn := range blocks {
		abs := startBlock + bn
		txns := make([]*types.Transaction, n)
		for i := range txns {
			op := contract.AppendOp(fmt.Sprintf("hot-%d", abs), "x")
			if i == 0 {
				op = contract.AppendOp("link", "x")
			}
			tx := &types.Transaction{
				App: "app1", Client: "c1", ClientTS: uint64(abs*n + i + 1),
				Op: op,
			}
			tx.ID = types.TxID(fmt.Sprintf("tx-%d-%d", abs, i))
			txns[i] = tx
		}
		blocks[bn] = txns
	}
	return blocks
}

// BenchmarkExecutorPipelined measures cross-block pipelined throughput
// on the chained-across-blocks workload at the barrier depth (1) and the
// default window (4). One iteration = a burst of 4 linked blocks of 32
// transactions each — exactly one pipeline window, small enough that the
// default bench time yields multiple iterations (single-iteration rows
// in BENCH_state.json carry no variance information) — under a 50us
// modeled contract service time (sleep-based, like the paper-calibrated
// bench harness, so the modeled cost parallelizes with goroutines rather
// than host cores).
func BenchmarkExecutorPipelined(b *testing.B) {
	const (
		blockTxns     = 32
		blocksPerIter = 4
	)
	cost := contract.CostModel{Cost: 50 * time.Microsecond}
	app := contract.WithCost(contract.NewKV(), cost)
	for _, depth := range []int{1, 4} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			r := newBenchRigDepth(b, 8, depth, app)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.runBlocks(b, crossChainedBlocks(i*blocksPerIter, blocksPerIter, blockTxns))
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*blocksPerIter*blockTxns)/secs, "tx/s")
			}
		})
	}
}

// skewedBlocks builds the workload shape the critical-path scheduler
// exists for: each block opens with a tail of independent filler
// transactions (unique per-block keys) and closes with a hot chain of
// appends on one shared key, stitched into a single serial chain across
// every in-flight block. The chain is the critical path — chain/blocks
// deep per window — but FIFO dispatch buries each ready chain link
// behind every queued filler, re-paying the queue drain per link;
// height-first dispatch runs the chain the moment a link frees and lets
// the fillers soak up the remaining workers.
func skewedBlocks(startBlock, numBlocks, tail, chain int) [][]*types.Transaction {
	blocks := make([][]*types.Transaction, numBlocks)
	for bn := range blocks {
		abs := startBlock + bn
		txns := make([]*types.Transaction, 0, tail+chain)
		n := tail + chain
		for i := 0; i < tail; i++ {
			tx := &types.Transaction{
				App: "app1", Client: "c1", ClientTS: uint64(abs*n + i + 1),
				Op: contract.PutOp(types.Key(fmt.Sprintf("cold-%d-%d", abs, i)), "v"),
			}
			tx.ID = types.TxID(fmt.Sprintf("tx-%d-%d", abs, i))
			txns = append(txns, tx)
		}
		for i := 0; i < chain; i++ {
			tx := &types.Transaction{
				App: "app1", Client: "c1", ClientTS: uint64(abs*n + tail + i + 1),
				Op: contract.AppendOp("hotchain", "x"),
			}
			tx.ID = types.TxID(fmt.Sprintf("tx-%d-%d", abs, tail+i))
			txns = append(txns, tx)
		}
		blocks[bn] = txns
	}
	return blocks
}

// BenchmarkExecutorScheduler races the three dispatch schedulers on two
// workload shapes at the default pipeline window (4): "chained" — the
// cross-block linked workload of BenchmarkExecutorPipelined, where the
// ready set is mostly uniform — and "skewed" — a hot serial chain
// threading through every block plus independent fillers, where
// dispatch order decides whether the chain (the critical path) stalls
// behind the fillers. Results are bit-identical across schedulers (see
// TestSchedulerEquivalence); only the tx/s differs. One iteration = one
// 4-block window under a 50us modeled contract service time.
func BenchmarkExecutorScheduler(b *testing.B) {
	const (
		tailTxns      = 96
		chainTxns     = 16
		chainBlkTxns  = 32
		blocksPerIter = 4
	)
	cost := contract.CostModel{Cost: 50 * time.Microsecond}
	app := contract.WithCost(contract.NewKV(), cost)
	workloads := []struct {
		name   string
		txns   int
		blocks func(startBlock int) [][]*types.Transaction
	}{
		{"chained", chainBlkTxns, func(start int) [][]*types.Transaction {
			return crossChainedBlocks(start, blocksPerIter, chainBlkTxns)
		}},
		{"skewed", tailTxns + chainTxns, func(start int) [][]*types.Transaction {
			return skewedBlocks(start, blocksPerIter, tailTxns, chainTxns)
		}},
	}
	for _, wl := range workloads {
		for _, sched := range allSchedulers {
			wl, sched := wl, sched
			b.Run(fmt.Sprintf("%s/%s", wl.name, sched), func(b *testing.B) {
				r := newBenchRigDepth(b, 8, 4, app, withScheduler(sched))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.runBlocks(b, wl.blocks(i*blocksPerIter))
				}
				b.StopTimer()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N*blocksPerIter*wl.txns)/secs, "tx/s")
				}
			})
		}
	}
}

// BenchmarkExecutorDurable puts the durability subsystem on the finalize
// hot path: the same chained-across-blocks workload as
// BenchmarkExecutorPipelined, in-memory vs WAL-backed (group fsync
// policy), at the per-block barrier (depth 1, one fsync per block) and
// the default window (depth 4, where blocks finalizing as one batch
// share a fsync). The fsyncs/block metric is the group-commit
// amortization; the tx/s gap between mem and wal rows is the durability
// cost. One iteration = a burst of 4 linked blocks of 32 transactions
// (one pipeline window; see BenchmarkExecutorPipelined on iteration
// sizing).
func BenchmarkExecutorDurable(b *testing.B) {
	const (
		blockTxns     = 32
		blocksPerIter = 4
	)
	cost := contract.CostModel{Cost: 50 * time.Microsecond}
	app := contract.WithCost(contract.NewKV(), cost)
	for _, depth := range []int{1, 4} {
		for _, durable := range []bool{false, true} {
			mode := "mem"
			dir := ""
			if durable {
				mode = "wal"
				dir = b.TempDir()
			}
			b.Run(fmt.Sprintf("depth=%d/%s", depth, mode), func(b *testing.B) {
				r := newBenchRigDurable(b, 8, depth, app, dir)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.runBlocks(b, crossChainedBlocks(i*blocksPerIter, blocksPerIter, blockTxns))
				}
				b.StopTimer()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N*blocksPerIter*blockTxns)/secs, "tx/s")
				}
				if r.mgr != nil {
					st := r.mgr.Stats()
					if st.Appends > 0 {
						b.ReportMetric(float64(st.Syncs)/float64(st.Appends), "fsyncs/block")
					}
				}
			})
		}
	}
}

// zipfAccountBlocks builds blocks of appends over accounts drawn from
// the given Zipf source: a heavy head of hot accounts plus a long tail
// reaching across the whole (mostly cold, under the tiered backend)
// account space. Draws continue across calls, so the access stream is
// one continuous Zipfian trace.
func zipfAccountBlocks(zr *rand.Zipf, startBlock, numBlocks, n int) [][]*types.Transaction {
	blocks := make([][]*types.Transaction, numBlocks)
	for bn := range blocks {
		abs := startBlock + bn
		txns := make([]*types.Transaction, n)
		for i := range txns {
			tx := &types.Transaction{
				App: "app1", Client: "c1", ClientTS: uint64(abs*n + i + 1),
				Op: contract.AppendOp(fmt.Sprintf("acct-%06d", zr.Uint64()), "x"),
			}
			tx.ID = types.TxID(fmt.Sprintf("tz-%d-%d", abs, i))
			txns[i] = tx
		}
		blocks[bn] = txns
	}
	return blocks
}

// BenchmarkExecutorTiered measures the larger-than-RAM hot path: 100k
// accounts (~8MiB of state) against a 1MiB hot budget — a working set 8x
// the cap — under a Zipfian access stream. Rows: the in-RAM KVStore
// baseline, the tiered store with demand-only cold reads, and the tiered
// store with the read-set prefetch pool warming cold keys off the
// critical path (admission hands each block's read set to the
// prefetcher, so a key's segment pread overlaps scheduling instead of
// stalling a worker). coldreads/tx counts every cold-tier read;
// demandcold/tx excludes the prefetched ones — prefetch=on must shift
// reads from demand to prefetch, and its tx/s must close most of the gap
// to mem. One iteration = a burst of 4 blocks of 128 transactions.
func BenchmarkExecutorTiered(b *testing.B) {
	const (
		accounts      = 100_000
		valBytes      = 64
		hotCap        = 1 << 20
		blockTxns     = 128
		blocksPerIter = 4
		zipfS         = 1.2
	)
	genesis := make([]types.KV, accounts)
	val := []byte(strings.Repeat("a", valBytes))
	for i := range genesis {
		genesis[i] = types.KV{Key: fmt.Sprintf("acct-%06d", i), Val: val}
	}
	variants := []struct {
		name     string
		tiered   bool
		prefetch int
	}{
		{"mem", false, 0},
		{"tiered/prefetch=off", true, 0},
		{"tiered/prefetch=on", true, 4},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var ts *state.TieredStore
			opt := func(c *Config) {
				if v.tiered {
					var err error
					ts, err = state.NewTieredStore(state.TieredConfig{HotBytes: hotCap})
					if err != nil {
						b.Fatal(err)
					}
					b.Cleanup(func() { ts.Close() })
					c.Store = ts
				}
				c.Store.Apply(genesis)
				c.PrefetchWorkers = v.prefetch
			}
			r := newBenchRigDepth(b, 8, 4, contract.NewKV(), opt)
			zr := rand.NewZipf(rand.New(rand.NewSource(42)), zipfS, 1, accounts-1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.runBlocks(b, zipfAccountBlocks(zr, i*blocksPerIter, blocksPerIter, blockTxns))
			}
			b.StopTimer()
			txns := b.N * blocksPerIter * blockTxns
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(txns)/secs, "tx/s")
			}
			if ts != nil {
				st := ts.Stats()
				es := r.exec.Stats()
				b.ReportMetric(float64(st.ColdReads)/float64(txns), "coldreads/tx")
				demand := st.ColdReads
				if es.PrefetchColdKeys < demand {
					demand -= es.PrefetchColdKeys
				} else {
					demand = 0
				}
				b.ReportMetric(float64(demand)/float64(txns), "demandcold/tx")
				b.ReportMetric(float64(st.Evictions)/float64(txns), "evictions/tx")
			}
		})
	}
}
