package telemetry

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// testStatus mirrors the shape parnode serves on /statusz.
type testStatus struct {
	Role        string `json:"role"`
	Height      uint64 `json:"height"`
	TipHash     string `json:"tip_hash"`
	WindowDepth int    `json:"window_depth"`
	QueueDepth  int    `json:"queue_depth"`
	HotKeys     int    `json:"hot_keys"`
	ColdKeys    int    `json:"cold_keys"`
	Syncing     bool   `json:"syncing"`
}

func newTestHandler(healthErr error) http.Handler {
	reg := NewRegistry()
	reg.Counter("parblockchain_executor_tx_executed_total", "Executed.", nil).Add(5)
	tr := NewBlockTracer(2)
	bt := tr.Start(3)
	bt.MarkAt(MarkDelivered, time.Unix(1, 0))
	bt.MarkAt(MarkExternalized, time.Unix(1, int64(time.Millisecond)))
	tr.Finish(bt)
	return NewHandler(ServerConfig{
		Registry: reg,
		Status: func() any {
			return testStatus{Role: "executor", Height: 9, TipHash: "abcd", WindowDepth: 2, QueueDepth: 1, HotKeys: 100, ColdKeys: 5000}
		},
		Health: func() error { return healthErr },
		Traces: tr.Slowest,
	})
}

func TestOpsEndpoints(t *testing.T) {
	srv := httptest.NewServer(newTestHandler(nil))
	defer srv.Close()

	t.Run("metrics", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Errorf("content-type %q", ct)
		}
		body, _ := io.ReadAll(resp.Body)
		if !strings.Contains(string(body), "parblockchain_executor_tx_executed_total 5") {
			t.Errorf("metrics body missing counter:\n%s", body)
		}
	})

	t.Run("statusz round-trip", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("content-type %q", ct)
		}
		var got testStatus
		dec := json.NewDecoder(resp.Body)
		dec.DisallowUnknownFields() // schema check: no stray keys
		if err := dec.Decode(&got); err != nil {
			t.Fatal(err)
		}
		want := testStatus{Role: "executor", Height: 9, TipHash: "abcd", WindowDepth: 2, QueueDepth: 1, HotKeys: 100, ColdKeys: 5000}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("statusz round-trip = %+v, want %+v", got, want)
		}
	})

	t.Run("healthz ok", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
			t.Errorf("healthz = %d %q, want 200 ok", resp.StatusCode, body)
		}
	})

	t.Run("traces", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/traces")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var recs []TraceRecord
		if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].Height != 3 {
			t.Errorf("traces = %+v", recs)
		}
	})

	t.Run("pprof index", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("pprof index status %d", resp.StatusCode)
		}
	})

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Post(srv.URL+"/metrics", "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /metrics = %d, want 405", resp.StatusCode)
		}
	})

	t.Run("unknown path", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/nope")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET /nope = %d, want 404", resp.StatusCode)
		}
	})
}

func TestHealthzUnready(t *testing.T) {
	srv := httptest.NewServer(newTestHandler(errors.New("stalled: no progress for 30s")))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "stalled") {
		t.Errorf("body %q missing stall reason", body)
	}
}

// A malformed request line gets a 400 (or a hangup), never a hang.
func TestOpsServerMalformedRequest(t *testing.T) {
	s, err := StartServer(ServerConfig{Addr: "127.0.0.1:0", Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("NOT-HTTP\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	if len(buf) > 0 && !strings.Contains(string(buf), "400") {
		t.Errorf("malformed request answered %q, want 400 or hangup", buf)
	}
}

// A client that never sends headers is cut off by ReadHeaderTimeout
// instead of pinning a connection forever.
func TestOpsServerHeaderTimeout(t *testing.T) {
	s, err := StartServer(ServerConfig{
		Addr:              "127.0.0.1:0",
		Registry:          NewRegistry(),
		ReadHeaderTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing. The server must close the connection on its own.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	_, err = conn.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("expected connection close, got data")
	}
	if errors.Is(err, io.EOF) == false && !strings.Contains(err.Error(), "reset") {
		// Either EOF or RST is fine; a deadline expiry means the server
		// never closed us.
		t.Fatalf("connection not closed by server (err=%v after %v)", err, time.Since(start))
	}
}

func TestStartServerServesMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("parblockchain_up", "1 when the ops server is serving.", nil).Inc()
	s, err := StartServer(ServerConfig{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "parblockchain_up 1") {
		t.Errorf("metrics over real listener missing counter:\n%s", body)
	}
}
