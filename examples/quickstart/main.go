// Quickstart: boot a complete in-process ParBlockchain network — three
// orderers running the Kafka-style ordering service, three executors each
// the agent of one accounting application — submit a few transfers, and
// inspect the resulting ledger.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"parblockchain/internal/contract"
	"parblockchain/internal/core"
	"parblockchain/internal/transport"
	"parblockchain/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A LAN-like in-process network: quarter-millisecond links.
	net := transport.NewInMemNetwork(transport.InMemConfig{
		Latency: transport.ConstantLatency(250 * time.Microsecond),
	})
	defer net.Close()

	bc, err := core.NewParBlockchain(core.Config{
		Orderers:  []types.NodeID{"o1", "o2", "o3"},
		Executors: []types.NodeID{"e1", "e2", "e3"},
		Clients:   []types.NodeID{"alice-client"},
		Agents: map[types.AppID][]types.NodeID{
			"payments": {"e1"},
			"loyalty":  {"e2"},
			"escrow":   {"e3"},
		},
		Contracts: map[types.AppID]contract.Contract{
			"payments": contract.NewAccounting(),
			"loyalty":  contract.NewAccounting(),
			"escrow":   contract.NewAccounting(),
		},
		Consensus:        core.ConsensusKafka,
		MaxBlockTxns:     50,
		MaxBlockInterval: 50 * time.Millisecond,
		Crypto:           true,
		Genesis: []types.KV{
			{Key: "payments/alice", Val: contract.EncodeBalance(1_000)},
			{Key: "payments/bob", Val: contract.EncodeBalance(100)},
		},
		Net: net,
	})
	if err != nil {
		return err
	}
	bc.Start()
	defer bc.Stop()

	client, err := bc.Client("alice-client")
	if err != nil {
		return err
	}

	// A valid transfer commits...
	tx := client.Prepare("payments", contract.TransferOp("payments/alice", "payments/bob", 250))
	result, err := client.Do(tx, 5*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("transfer 250 alice->bob: aborted=%v writes=%d\n", result.Aborted, len(result.Writes))

	// ...an overdraft commits "as aborted" (the paper's (x, "abort")).
	tx = client.Prepare("payments", contract.TransferOp("payments/alice", "payments/bob", 1_000_000))
	result, err = client.Do(tx, 5*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("overdraft attempt:        aborted=%v reason=%q\n", result.Aborted, result.AbortReason)

	// Inspect the final state and the hash-chained ledger.
	raw, _ := bc.ObserverStore().Get("payments/alice")
	bal, _ := contract.Balance(raw)
	fmt.Printf("alice's balance: %d\n", bal)

	led := bc.ObserverLedger()
	fmt.Printf("ledger height: %d blocks, %d transactions, chain verify: %v\n",
		led.Height(), led.TxCount(), led.Verify() == nil)
	return nil
}
