package transport

import (
	"fmt"
	"testing"
	"time"

	"parblockchain/internal/types"
)

type tcpPayload struct {
	N    int
	Text string
}

func init() {
	RegisterWireTypes(tcpPayload{})
}

// tcpPair builds two connected TCP endpoints on loopback.
func tcpPair(t *testing.T) (*TCPEndpoint, *TCPEndpoint) {
	t.Helper()
	book := make(map[types.NodeID]string)
	a, err := NewTCPEndpoint(TCPConfig{ID: "a", ListenAddr: "127.0.0.1:0", Peers: book})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPEndpoint(TCPConfig{ID: "b", ListenAddr: "127.0.0.1:0", Peers: book})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	book["a"] = a.Addr()
	book["b"] = b.Addr()
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func TestTCPSendReceive(t *testing.T) {
	a, b := tcpPair(t)
	if err := a.Send("b", tcpPayload{N: 7, Text: "hello"}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-b.Recv():
		if msg.From != "a" {
			t.Fatalf("From = %s", msg.From)
		}
		p, ok := msg.Payload.(tcpPayload)
		if !ok || p.N != 7 || p.Text != "hello" {
			t.Fatalf("payload = %#v", msg.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, b := tcpPair(t)
	if err := a.Send("b", tcpPayload{N: 1}); err != nil {
		t.Fatal(err)
	}
	<-b.Recv()
	if err := b.Send("a", tcpPayload{N: 2}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-a.Recv():
		if msg.Payload.(tcpPayload).N != 2 {
			t.Fatalf("payload = %#v", msg.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reverse delivery")
	}
}

func TestTCPFIFO(t *testing.T) {
	a, b := tcpPair(t)
	const n = 500
	for i := 0; i < n; i++ {
		if err := a.Send("b", tcpPayload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case msg := <-b.Recv():
			if msg.Payload.(tcpPayload).N != i {
				t.Fatalf("out of order at %d: %#v", i, msg.Payload)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled at %d", i)
		}
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _ := tcpPair(t)
	if err := a.Send("ghost", tcpPayload{}); err == nil {
		t.Fatal("send to unknown peer must error")
	}
}

func TestTCPSendAfterCloseErrors(t *testing.T) {
	a, b := tcpPair(t)
	a.Close()
	if err := a.Send("b", tcpPayload{}); err == nil {
		t.Fatal("send after close must error")
	}
	_ = b
}

func TestTCPCloseEndsRecv(t *testing.T) {
	a, b := tcpPair(t)
	_ = a
	done := make(chan struct{})
	go func() {
		for range b.Recv() {
		}
		close(done)
	}()
	b.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not end on close")
	}
}

func TestTCPManyPeers(t *testing.T) {
	book := make(map[types.NodeID]string)
	const n = 5
	eps := make([]*TCPEndpoint, n)
	for i := 0; i < n; i++ {
		id := types.NodeID(fmt.Sprintf("n%d", i))
		ep, err := NewTCPEndpoint(TCPConfig{ID: id, ListenAddr: "127.0.0.1:0", Peers: book})
		if err != nil {
			t.Fatal(err)
		}
		book[id] = ep.Addr()
		eps[i] = ep
		defer ep.Close()
	}
	// Everyone sends to everyone.
	for i, from := range eps {
		for j := range eps {
			if i == j {
				continue
			}
			to := types.NodeID(fmt.Sprintf("n%d", j))
			if err := from.Send(to, tcpPayload{N: i*10 + j}); err != nil {
				t.Fatalf("%d->%d: %v", i, j, err)
			}
		}
	}
	for j, ep := range eps {
		got := 0
		deadline := time.After(5 * time.Second)
		for got < n-1 {
			select {
			case <-ep.Recv():
				got++
			case <-deadline:
				t.Fatalf("node %d received %d of %d", j, got, n-1)
			}
		}
	}
}
