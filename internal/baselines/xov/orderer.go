package xov

import (
	"crypto/sha256"
	"log"
	"sync"
	"time"

	"parblockchain/internal/consensus"
	"parblockchain/internal/cryptoutil"
	"parblockchain/internal/transport"
	"parblockchain/internal/types"
)

func shaSum(b []byte) types.Hash { return sha256.Sum256(b) }

// OrdererConfig parameterizes one XOV orderer.
type OrdererConfig struct {
	// ID is this orderer's identity.
	ID types.NodeID
	// Endpoint is the node's transport attachment.
	Endpoint transport.Endpoint
	// Consensus is the member's ordering protocol instance.
	Consensus consensus.Node
	// Peers lists the validating peers, the block multicast targets.
	Peers []types.NodeID
	// Signer signs block announcements.
	Signer cryptoutil.Signer
	// MaxBlockTxns, MaxBlockBytes, MaxBlockInterval are the block cut
	// conditions (defaults 100 / 2MB / 100ms; the paper finds XOV's peak
	// around 100 transactions per block).
	MaxBlockTxns     int
	MaxBlockBytes    int
	MaxBlockInterval time.Duration
	// Logf receives diagnostics; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// Orderer is one XOV ordering node: it orders opaque endorsed
// transactions and cuts blocks under the same three deterministic
// conditions as the ParBlockchain orderer, but performs no dependency
// analysis — conflict handling is deferred to validation, per the
// paradigm.
type Orderer struct {
	cfg OrdererConfig

	// Block assembly state, owned by the delivery goroutine.
	pending      [][]byte
	pendingBytes int
	seen         map[types.Hash]bool
	prevHash     types.Hash
	nextNum      uint64
	cutRequested bool

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

const (
	payloadItem = 0x01
	payloadCut  = 0x02
)

// NewOrderer creates an XOV orderer. Call Start before use.
func NewOrderer(cfg OrdererConfig) *Orderer {
	if cfg.MaxBlockTxns <= 0 {
		cfg.MaxBlockTxns = 100
	}
	if cfg.MaxBlockBytes <= 0 {
		cfg.MaxBlockBytes = 2 << 20
	}
	if cfg.MaxBlockInterval <= 0 {
		cfg.MaxBlockInterval = 100 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return &Orderer{
		cfg:    cfg,
		seen:   make(map[types.Hash]bool),
		stopCh: make(chan struct{}),
	}
}

// Start launches the consensus instance and the orderer loops.
func (o *Orderer) Start() {
	o.cfg.Consensus.Start()
	o.wg.Add(2)
	go o.recvLoop()
	go o.deliverLoop()
}

// Stop shuts the orderer down.
func (o *Orderer) Stop() {
	o.stopOnce.Do(func() {
		close(o.stopCh)
		o.cfg.Consensus.Stop()
		o.cfg.Endpoint.Close()
	})
	o.wg.Wait()
}

func (o *Orderer) recvLoop() {
	defer o.wg.Done()
	for msg := range o.cfg.Endpoint.Recv() {
		switch m := msg.Payload.(type) {
		case *SubmitMsg:
			payload := make([]byte, 0, len(m.Payload)+1)
			payload = append(payload, payloadItem)
			payload = append(payload, m.Payload...)
			_ = o.cfg.Consensus.Submit(payload)
		default:
			o.cfg.Consensus.Step(msg.From, msg.Payload)
		}
	}
}

func (o *Orderer) deliverLoop() {
	defer o.wg.Done()
	timer := time.NewTimer(o.cfg.MaxBlockInterval)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	timerArmed := false
	for {
		select {
		case <-o.stopCh:
			return
		case entry, ok := <-o.cfg.Consensus.Committed():
			if !ok {
				return
			}
			o.handleEntry(entry)
			if len(o.pending) > 0 && !timerArmed {
				timer.Reset(o.cfg.MaxBlockInterval)
				timerArmed = true
			} else if len(o.pending) == 0 && timerArmed {
				if !timer.Stop() {
					<-timer.C
				}
				timerArmed = false
			}
		case <-timer.C:
			timerArmed = false
			if len(o.pending) > 0 && !o.cutRequested {
				o.cutRequested = true
				w := types.AcquireWriter()
				w.Byte(payloadCut)
				w.U64(o.nextNum)
				payload := w.CloneBytes()
				types.ReleaseWriter(w)
				_ = o.cfg.Consensus.Submit(payload)
			}
		}
	}
}

func (o *Orderer) handleEntry(entry consensus.Entry) {
	if len(entry.Payload) == 0 {
		return
	}
	switch entry.Payload[0] {
	case payloadItem:
		item := entry.Payload[1:]
		h := shaSum(item)
		if o.seen[h] {
			return
		}
		o.seen[h] = true
		o.pending = append(o.pending, item)
		o.pendingBytes += len(item)
		if len(o.pending) >= o.cfg.MaxBlockTxns || o.pendingBytes >= o.cfg.MaxBlockBytes {
			o.cutBlock()
		}
	case payloadCut:
		r := types.NewByteReader(entry.Payload[1:])
		num := r.U64()
		if r.Err() == nil && num == o.nextNum && len(o.pending) > 0 {
			o.cutBlock()
		}
		if num >= o.nextNum {
			o.cutRequested = false
		}
	}
}

func (o *Orderer) cutBlock() {
	items := o.pending
	o.pending = nil
	o.pendingBytes = 0
	o.cutRequested = false

	msg := &BlockMsg{
		Number:   o.nextNum,
		PrevHash: o.prevHash,
		Items:    items,
		Orderer:  o.cfg.ID,
	}
	digest := msg.Digest()
	msg.Sig = o.cfg.Signer.Sign(digest[:])
	o.nextNum++
	o.prevHash = digest
	if err := transport.Multicast(o.cfg.Endpoint, o.cfg.Peers, msg); err != nil {
		o.cfg.Logf("xov orderer %s: multicast block %d: %v", o.cfg.ID, msg.Number, err)
	}
	if len(o.seen) > 8*o.cfg.MaxBlockTxns {
		o.seen = make(map[types.Hash]bool, 2*o.cfg.MaxBlockTxns)
	}
}
