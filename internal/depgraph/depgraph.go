// Package depgraph implements the dependency-graph generator at the heart
// of the OXII paradigm (Section III-A of the ParBlockchain paper).
//
// Given a block of transactions in their agreed total order, each with a
// declared read set rho(T) and write set omega(T), an ordering dependency
// Ti ~> Tj exists iff Ti precedes Tj in the block and
//
//	rho(Ti)  ∩ omega(Tj) != ∅, or
//	omega(Ti) ∩ rho(Tj)  != ∅, or
//	omega(Ti) ∩ omega(Tj) != ∅.
//
// The dependency graph of the block is the DAG over the block's
// transactions whose edges are exactly the ordering dependencies. Any
// execution schedule that respects the graph's partial order is equivalent
// to the sequential execution of the block, while transactions that are
// unordered by the graph may run in parallel.
//
// The package is pure: it depends only on the standard library and knows
// nothing about transactions beyond their read/write sets, so it can be
// reused for op-level (DGCC-style) or multi-version variants.
package depgraph

import (
	"errors"
	"fmt"
	"sort"
)

// Mode selects the conflict rule used to derive edges.
type Mode int

const (
	// Standard is the single-version rule from the paper's main
	// definition: read-write, write-read, and write-write intersections
	// all create ordering dependencies.
	Standard Mode = iota + 1
	// MultiVersion is the rule for multi-version datastores discussed in
	// Section III-A: writes create new versions, so concurrent
	// write-write and read-before-write pairs are permitted; only
	// "earlier writes, later reads" pairs (omega(Ti) ∩ rho(Tj)) are
	// ordered.
	MultiVersion
)

// String returns the mode's name.
func (m Mode) String() string {
	switch m {
	case Standard:
		return "standard"
	case MultiVersion:
		return "multiversion"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// RWSet is the declared access sets of one transaction. Both slices must
// be sorted and duplicate-free for the indexed builder; Normalize puts an
// arbitrary slice in that form.
type RWSet struct {
	// Reads is the set of keys the transaction reads.
	Reads []string
	// Writes is the set of keys the transaction writes.
	Writes []string
}

// Normalize sorts and deduplicates both access sets in place.
func (s *RWSet) Normalize() {
	s.Reads = normalize(s.Reads)
	s.Writes = normalize(s.Writes)
}

func normalize(keys []string) []string {
	if len(keys) < 2 {
		return keys
	}
	sort.Strings(keys)
	out := keys[:1]
	for _, k := range keys[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// Graph is a dependency graph over the n transactions of one block,
// indexed 0..n-1 in block order. All edges point from lower to higher
// index, so the natural order is a topological order by construction.
//
// Graph values are safe for concurrent readers once built.
type Graph struct {
	// N is the number of transactions (nodes).
	N int
	// Succ[i] lists the successors Suc(i) in increasing order.
	Succ [][]int32
	// Pred[i] lists the predecessors Pre(i) in increasing order.
	Pred [][]int32
}

// ErrInvalid reports a malformed graph (edge direction or range
// violations).
var ErrInvalid = errors.New("depgraph: invalid graph")

// Build constructs the dependency graph for the given access sets using
// the indexed builder: for every key it tracks the last writer and the
// readers since that write, emitting only edges whose transitive closure
// equals the full pairwise conflict relation. This is O(sum of access-set
// sizes) per block rather than O(n^2) pairwise scans.
//
// Build is the batch form of the incremental Appender (append.go) and is
// implemented on top of it, so a graph streamed out one transaction at a
// time is identical, edge for edge, to the graph built at the block cut.
func Build(sets []RWSet, mode Mode) *Graph {
	a := NewAppender(mode)
	for _, s := range sets {
		a.Append(s)
	}
	return a.Finish()
}

// BuildPairwise constructs the dependency graph by comparing every pair of
// transactions, emitting an edge for each conflicting pair exactly as the
// paper's definition enumerates them. It is O(n^2) in the block size and
// exists both as the reference implementation the indexed Build is tested
// against and as the paper-faithful cost model for the block-size
// experiments (Figure 5 attributes the throughput turnover to dependency
// graph generation cost).
func BuildPairwise(sets []RWSet, mode Mode) *Graph {
	n := len(sets)
	g := &Graph{
		N:    n,
		Succ: make([][]int32, n),
		Pred: make([][]int32, n),
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if conflicts(&sets[i], &sets[j], mode) {
				g.Succ[i] = append(g.Succ[i], int32(j))
				g.Pred[j] = append(g.Pred[j], int32(i))
			}
		}
	}
	return g
}

// conflicts reports whether an ordering dependency i ~> j exists under the
// given mode, for i preceding j in the block.
func conflicts(a, b *RWSet, mode Mode) bool {
	if mode == MultiVersion {
		return intersectsSorted(a.Writes, b.Reads)
	}
	return intersectsSorted(a.Writes, b.Writes) ||
		intersectsSorted(a.Reads, b.Writes) ||
		intersectsSorted(a.Writes, b.Reads)
}

// intersectsSorted reports whether two sorted string slices share an
// element, via a linear merge scan.
func intersectsSorted(a, b []string) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// EdgeCount returns the number of edges in the graph.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, s := range g.Succ {
		total += len(s)
	}
	return total
}

// HasEdge reports whether the edge i->j is present.
func (g *Graph) HasEdge(i, j int) bool {
	succ := g.Succ[i]
	k := sort.Search(len(succ), func(k int) bool { return succ[k] >= int32(j) })
	return k < len(succ) && succ[k] == int32(j)
}

// Validate checks structural invariants: every edge points forward in
// block order (hence the graph is acyclic), adjacency lists are sorted and
// in range, and Succ/Pred mirror each other.
func (g *Graph) Validate() error {
	if len(g.Succ) != g.N || len(g.Pred) != g.N {
		return fmt.Errorf("%w: adjacency size mismatch", ErrInvalid)
	}
	for i, succ := range g.Succ {
		prev := int32(i)
		for _, j := range succ {
			if j <= int32(i) {
				return fmt.Errorf("%w: backward or self edge %d->%d", ErrInvalid, i, j)
			}
			if int(j) >= g.N {
				return fmt.Errorf("%w: edge target %d out of range", ErrInvalid, j)
			}
			if j <= prev && prev != int32(i) {
				return fmt.Errorf("%w: unsorted successors at node %d", ErrInvalid, i)
			}
			prev = j
			if !containsInt32(g.Pred[j], int32(i)) {
				return fmt.Errorf("%w: edge %d->%d missing from Pred", ErrInvalid, i, j)
			}
		}
	}
	for j, pred := range g.Pred {
		for _, i := range pred {
			if i >= int32(j) {
				return fmt.Errorf("%w: backward or self pred edge %d->%d", ErrInvalid, i, j)
			}
			if !containsInt32(g.Succ[i], int32(j)) {
				return fmt.Errorf("%w: edge %d->%d missing from Succ", ErrInvalid, i, j)
			}
		}
	}
	return nil
}

func containsInt32(s []int32, v int32) bool {
	k := sort.Search(len(s), func(k int) bool { return s[k] >= v })
	return k < len(s) && s[k] == v
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{N: g.N, Succ: make([][]int32, g.N), Pred: make([][]int32, g.N)}
	for i := range g.Succ {
		if len(g.Succ[i]) > 0 {
			c.Succ[i] = append([]int32(nil), g.Succ[i]...)
		}
		if len(g.Pred[i]) > 0 {
			c.Pred[i] = append([]int32(nil), g.Pred[i]...)
		}
	}
	return c
}
