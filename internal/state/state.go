// Package state implements the blockchain state (datastore) maintained by
// executor peers: a versioned key-value store, an overlay view used during
// block execution, and a multi-version store for the MVCC variant of the
// dependency-graph generator discussed in Section III-A of the paper.
//
// # Ownership contract (zero-copy)
//
// The stores in this package are zero-copy: they neither copy values in on
// write nor copy them out on read. Ownership of a value slice transfers to
// the store on Put/Apply/Write/Record, and every read (Get, GetVersion,
// ReadAsOf, Snapshot) returns the stored slice itself. Consequently:
//
//   - callers must not mutate a slice after handing it to a store, and
//   - callers must treat every returned slice as read-only.
//
// The commit pipeline satisfies this naturally: write sets are either
// freshly allocated by contract execution or freshly decoded from the
// wire, and are never touched again after the commit boundary
// (KVStore.Apply). This removes one allocation + copy per key per write
// from the hot path.
package state

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"parblockchain/internal/types"
)

// Reader is the read-only view a smart contract executes against.
// Returned value slices are shared with the store: treat them as
// immutable (see the package ownership contract).
type Reader interface {
	// Get returns the current value of key and whether it exists.
	Get(key types.Key) ([]byte, bool)
}

// VersionedReader additionally exposes per-key versions, which the XOV
// baseline's endorsement phase records for MVCC validation.
type VersionedReader interface {
	Reader
	// GetVersion returns the value, its version, and whether the key
	// exists. Versions start at 1 on first write and increment on every
	// subsequent write.
	GetVersion(key types.Key) ([]byte, uint64, bool)
}

// shardBits fixes the lock-stripe fan-out of KVStore and MVCCStore.
// 32 shards keeps the per-store footprint small while exceeding the worker
// pool sizes used by the executors, so under a uniform key distribution
// two workers rarely contend on the same stripe.
const (
	shardBits  = 5
	shardCount = 1 << shardBits
	shardMask  = shardCount - 1
)

// shardIndex dispatches a key to its stripe with FNV-1a, xor-folded so
// that the high bits participate in the stripe choice. The function is a
// pure function of the key bytes — replicas assign every key to the same
// stripe, which keeps the per-shard digests comparable across nodes.
func shardIndex(key types.Key) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int((h ^ h>>32) & shardMask)
}

// entryDigest hashes one live record with the same length-prefixed framing
// the original full-store hash used. Small records (the common case) are
// framed on the stack and hashed with the allocation-free sha256.Sum256.
func entryDigest(key types.Key, val []byte) [sha256.Size]byte {
	need := 16 + len(key) + len(val)
	var stack [160]byte
	var buf []byte
	if need <= len(stack) {
		buf = stack[:0]
	} else {
		buf = make([]byte, 0, need)
	}
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], uint64(len(key)))
	buf = append(buf, scratch[:]...)
	buf = append(buf, key...)
	binary.BigEndian.PutUint64(scratch[:], uint64(len(val)))
	buf = append(buf, scratch[:]...)
	buf = append(buf, val...)
	return sha256.Sum256(buf)
}

// KVStore is the committed blockchain state: a versioned in-memory
// key-value map, lock-striped across shardCount independent shards so
// that parallel executor workers reading (and the commit path writing)
// disjoint keys never contend on a shared lock.
//
// Each shard maintains a running digest — the XOR of entryDigest over its
// live records. XOR is commutative and self-inverse, so the digest can be
// updated in O(1) per write (fold the old entry out, the new one in) and
// is independent of insertion order; Hash folds the shard digests
// together in O(shardCount) instead of sorting and rehashing the whole
// keyspace.
//
// KVStore is safe for concurrent use and follows the package-level
// zero-copy ownership contract.
type KVStore struct {
	shards [shardCount]kvShard
}

type kvShard struct {
	mu     sync.RWMutex
	data   map[types.Key]versioned
	digest [sha256.Size]byte // XOR of entryDigest over live records
	_      [64]byte          // pad to its own cache lines: shards are hot and adjacent
}

type versioned struct {
	val []byte
	ver uint64
	// dig caches entryDigest(key, val) so an overwrite or delete folds
	// the old entry out of the shard digest without rehashing it: one
	// SHA-256 per write instead of two.
	dig [sha256.Size]byte
}

// NewKVStore returns an empty store.
func NewKVStore() *KVStore {
	s := &KVStore{}
	for i := range s.shards {
		s.shards[i].data = make(map[types.Key]versioned)
	}
	return s
}

func (s *KVStore) shard(key types.Key) *kvShard {
	return &s.shards[shardIndex(key)]
}

// Get returns the current value of key. The returned slice is the stored
// one — read-only for the caller.
func (s *KVStore) Get(key types.Key) ([]byte, bool) {
	sh := s.shard(key)
	sh.mu.RLock()
	v, ok := sh.data[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return v.val, true
}

// GetVersion returns the value and version of key. The returned slice is
// the stored one — read-only for the caller.
func (s *KVStore) GetVersion(key types.Key) ([]byte, uint64, bool) {
	sh := s.shard(key)
	sh.mu.RLock()
	v, ok := sh.data[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, 0, false
	}
	return v.val, v.ver, true
}

// Version returns the current version of key (0 if absent).
func (s *KVStore) Version(key types.Key) uint64 {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.data[key].ver
}

// Put writes one record, bumping its version. Ownership of val transfers
// to the store; the caller must not mutate it afterwards. A nil value
// deletes the record.
func (s *KVStore) Put(key types.Key, val []byte) {
	sh := s.shard(key)
	sh.mu.Lock()
	sh.put(key, val)
	sh.mu.Unlock()
}

// put applies one write under the shard lock, keeping the running digest
// in sync with the map.
func (sh *kvShard) put(key types.Key, val []byte) {
	prev, existed := sh.data[key]
	if existed {
		xorDigest(&sh.digest, prev.dig)
	}
	if val == nil {
		if existed {
			delete(sh.data, key)
		}
		return
	}
	dig := entryDigest(key, val)
	sh.data[key] = versioned{val: val, ver: prev.ver + 1, dig: dig}
	xorDigest(&sh.digest, dig)
}

func xorDigest(acc *[sha256.Size]byte, d [sha256.Size]byte) {
	for i := range acc {
		acc[i] ^= d[i]
	}
}

// Apply writes a batch of records atomically, bumping each version. A nil
// value deletes the record. Ownership of the value slices transfers to
// the store. Atomicity is provided by write-locking every touched shard
// (in ascending order, deadlock-free against the lock-all readers) for
// the duration of the batch.
func (s *KVStore) Apply(writes []types.KV) {
	if len(writes) == 0 {
		return
	}
	var touched [shardCount]bool
	for i := range writes {
		touched[shardIndex(writes[i].Key)] = true
	}
	for i := range s.shards {
		if touched[i] {
			s.shards[i].mu.Lock()
		}
	}
	for _, kv := range writes {
		s.shards[shardIndex(kv.Key)].put(kv.Key, kv.Val)
	}
	for i := range s.shards {
		if touched[i] {
			s.shards[i].mu.Unlock()
		}
	}
}

// Reset atomically discards every record and digest, returning the store
// to its freshly-constructed state. State sync uses it before installing
// a peer-served snapshot: adoption replaces the whole state, it does not
// merge into it. All shards are write-locked for the duration, so
// concurrent readers see either the old state or the empty one.
func (s *KVStore) Reset() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	for i := range s.shards {
		s.shards[i].data = make(map[types.Key]versioned)
		s.shards[i].digest = [sha256.Size]byte{}
	}
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}

// rlockAll read-locks every shard in ascending order, giving the caller a
// consistent point-in-time view against Apply's multi-shard write locks.
func (s *KVStore) rlockAll() {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
}

func (s *KVStore) runlockAll() {
	for i := range s.shards {
		s.shards[i].mu.RUnlock()
	}
}

// Len returns the number of live records.
func (s *KVStore) Len() int {
	s.rlockAll()
	defer s.runlockAll()
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].data)
	}
	return n
}

// Hash returns a deterministic digest over the full store contents, used
// by tests and state-sync to compare replicas. It folds the incrementally
// maintained per-shard digests together with the live record count, so
// the cost is O(shardCount) regardless of store size, and the result
// depends only on the set of live (key, value) pairs — replicas applying
// the same writes in any interleaving consistent with the commit order
// produce bit-identical hashes.
//
// The XOR fold makes this digest suitable for detecting divergence among
// honest replicas only: XOR-combined hashes are not collision-resistant
// against an adversary who chooses its own state (Bellare–Micciancio), so
// a Byzantine replica could craft a different state with a matching
// digest. Do not use Hash as a trust anchor across fault domains; the
// BFT-grade commitments in this system are the per-transaction result
// digests checked by Algorithm 3's tau-matching quorum.
func (s *KVStore) Hash() types.Hash {
	var acc [sha256.Size]byte
	var count uint64
	s.rlockAll()
	for i := range s.shards {
		xorDigest(&acc, s.shards[i].digest)
		count += uint64(len(s.shards[i].data))
	}
	s.runlockAll()
	h := sha256.New()
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], count)
	h.Write(scratch[:])
	h.Write(acc[:])
	var out types.Hash
	h.Sum(out[:0])
	return out
}

// rehash recomputes the store hash from scratch, ignoring the maintained
// per-shard digests. Tests use it to assert the incremental digests never
// drift from the map contents.
func (s *KVStore) rehash() types.Hash {
	var acc [sha256.Size]byte
	var count uint64
	s.rlockAll()
	for i := range s.shards {
		for k, v := range s.shards[i].data {
			xorDigest(&acc, entryDigest(k, v.val))
		}
		count += uint64(len(s.shards[i].data))
	}
	s.runlockAll()
	h := sha256.New()
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], count)
	h.Write(scratch[:])
	h.Write(acc[:])
	var out types.Hash
	h.Sum(out[:0])
	return out
}

// Snapshot returns a consistent point-in-time copy of the current
// contents, for tests and state transfer. Per the package ownership
// contract the value slices are shared with the store, not copied —
// treat them as read-only.
func (s *KVStore) Snapshot() map[types.Key][]byte {
	s.rlockAll()
	defer s.runlockAll()
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].data)
	}
	out := make(map[types.Key][]byte, n)
	for i := range s.shards {
		for k, v := range s.shards[i].data {
			out[k] = v.val
		}
	}
	return out
}

// SnapshotShards returns a consistent point-in-time copy of the store
// partitioned by shard, together with the full-store hash of exactly
// that content. Both are captured under one multi-shard read lock, so
// the hash commits to the returned records even when writers are
// concurrent — the pairing the durability subsystem's snapshot writer
// needs. Per the package ownership contract the value slices are shared
// with the store, not copied.
func (s *KVStore) SnapshotShards() ([][]types.KV, types.Hash) {
	var acc [sha256.Size]byte
	var count uint64
	out := make([][]types.KV, shardCount)
	s.rlockAll()
	for i := range s.shards {
		sh := &s.shards[i]
		xorDigest(&acc, sh.digest)
		count += uint64(len(sh.data))
		if len(sh.data) == 0 {
			continue
		}
		kvs := make([]types.KV, 0, len(sh.data))
		for k, v := range sh.data {
			kvs = append(kvs, types.KV{Key: k, Val: v.val})
		}
		out[i] = kvs
	}
	s.runlockAll()
	h := sha256.New()
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], count)
	h.Write(scratch[:])
	h.Write(acc[:])
	var hash types.Hash
	h.Sum(hash[:0])
	return out, hash
}

var (
	_ Reader          = (*KVStore)(nil)
	_ VersionedReader = (*KVStore)(nil)
)
