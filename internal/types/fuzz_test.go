package types

import (
	"bytes"
	"testing"

	"parblockchain/internal/depgraph"
)

// The codec fuzz contract: arbitrary input must either decode or return
// an error — never panic, never over-allocate past the input size — and
// anything that decodes must re-encode stably (decode(encode(decode(x)))
// is a fixed point). Seed corpora live in testdata/fuzz and are run as
// regression inputs by plain `go test`.

func fuzzTx() *Transaction {
	return &Transaction{
		ID:       "tx-1",
		App:      "app1",
		Client:   "c1",
		ClientTS: 7,
		Op: Operation{
			Method: "transfer",
			Params: []string{"a", "b", "5"},
			Reads:  []string{"a", "b"},
			Writes: []string{"a", "b"},
		},
		SubmitUnixNano: 1234567,
		Sig:            []byte{1, 2, 3},
	}
}

func FuzzUnmarshalTransaction(f *testing.F) {
	f.Add(fuzzTx().Marshal())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		tx, err := UnmarshalTransaction(data)
		if err != nil {
			return
		}
		enc := tx.Marshal()
		tx2, err := UnmarshalTransaction(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if !bytes.Equal(enc, tx2.Marshal()) {
			t.Fatal("transaction encoding is not a fixed point")
		}
	})
}

func FuzzUnmarshalNewBlockMsg(f *testing.F) {
	tx := fuzzTx()
	block := NewBlock(3, Hash{1}, []*Transaction{tx, fuzzTx()})
	msg := &NewBlockMsg{
		Block: block,
		Graph: &depgraph.Graph{
			N:    2,
			Succ: [][]int32{{1}, nil},
			Pred: [][]int32{nil, {0}},
		},
		Apps:    []AppID{"app1"},
		Orderer: "o1",
		Sig:     []byte{9},
	}
	f.Add(msg.Marshal())
	msg.Graph = nil
	f.Add(msg.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalNewBlockMsg(data)
		if err != nil {
			return
		}
		enc := m.Marshal()
		m2, err := UnmarshalNewBlockMsg(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if !bytes.Equal(enc, m2.Marshal()) {
			t.Fatal("NEWBLOCK encoding is not a fixed point")
		}
		if m.Graph != nil {
			if err := m.Graph.Validate(); err != nil {
				t.Fatalf("decoder admitted an invalid graph: %v", err)
			}
		}
	})
}

func FuzzUnmarshalCommitMsg(f *testing.F) {
	msg := &CommitMsg{
		BlockNum: 5,
		Results: []TxResult{
			{TxID: "tx-1", Index: 0, Writes: []KV{{Key: "a", Val: []byte("1")}, {Key: "d"}}},
			{TxID: "tx-2", Index: 1, Aborted: true, AbortReason: "broke"},
		},
		Executor: "e1",
		Sig:      []byte{4, 5},
	}
	f.Add(msg.Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xfe}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalCommitMsg(data)
		if err != nil {
			return
		}
		enc := m.Marshal()
		m2, err := UnmarshalCommitMsg(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if !bytes.Equal(enc, m2.Marshal()) {
			t.Fatal("COMMIT encoding is not a fixed point")
		}
	})
}

// TestMsgCodecRoundTrip pins exact round trips for the new message
// codecs, including the nil-vs-empty write value distinction (nil is a
// deletion and must survive the wire).
func TestMsgCodecRoundTrip(t *testing.T) {
	commit := &CommitMsg{
		BlockNum: 9,
		Results: []TxResult{
			{TxID: "t1", Index: 0, Writes: []KV{
				{Key: "k", Val: []byte("v")},
				{Key: "del", Val: nil},
				{Key: "empty", Val: []byte{}},
			}},
		},
		Executor: "e2",
		Sig:      []byte{1},
	}
	got, err := UnmarshalCommitMsg(commit.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	w := got.Results[0].Writes
	if w[1].Val != nil {
		t.Fatal("deletion write became a value")
	}
	if w[2].Val == nil {
		t.Fatal("empty write became a deletion")
	}
	if got.Digest() != commit.Digest() {
		t.Fatal("COMMIT digest changed across the wire")
	}

	tx := fuzzTx()
	block := NewBlock(1, Hash{7}, []*Transaction{tx})
	msg := &NewBlockMsg{Block: block, Apps: block.Apps(), Orderer: "o1", Sig: []byte{2}}
	back, err := UnmarshalNewBlockMsg(msg.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Block.Hash() != block.Hash() {
		t.Fatal("block hash changed across the wire")
	}
	if !back.Block.VerifyTxRoot() {
		t.Fatal("tx root no longer verifies after round trip")
	}
	if back.Digest() != msg.Digest() {
		t.Fatal("NEWBLOCK digest changed across the wire")
	}
}
