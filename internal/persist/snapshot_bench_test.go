package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"parblockchain/internal/state"
	"parblockchain/internal/types"
)

// TestSnapshotParallelWriteMatchesSerial pins the shard-parallel writer's
// contract: with any worker count the snapshot file is byte-identical to
// the serial write (one CRC, shard order preserved) and round-trips
// through readSnapshotFile.
func TestSnapshotParallelWriteMatchesSerial(t *testing.T) {
	store := state.NewKVStore()
	var batch []types.KV
	for i := 0; i < 4096; i++ {
		batch = append(batch, types.KV{
			Key: fmt.Sprintf("k%06d", i), Val: []byte(fmt.Sprintf("v%d", i)),
		})
	}
	store.Apply(batch)
	shards, hash := store.SnapshotShards()
	man := &Manifest{
		Height: 7, StateHash: hash,
		Shards: uint64(len(shards)), Records: countRecords(shards),
	}
	dir := t.TempDir()
	old := snapshotWorkers
	t.Cleanup(func() { snapshotWorkers = old })

	snapshotWorkers = 1
	serialPath := filepath.Join(dir, "serial.snap")
	if err := writeSnapshotFile(serialPath, man, shards); err != nil {
		t.Fatal(err)
	}
	snapshotWorkers = 4
	parallelPath := filepath.Join(dir, "parallel.snap")
	if err := writeSnapshotFile(parallelPath, man, shards); err != nil {
		t.Fatal(err)
	}

	serial, err := os.ReadFile(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := os.ReadFile(parallelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatal("parallel snapshot write produced different bytes than serial")
	}
	gotMan, gotStore, err := readSnapshotFile(parallelPath)
	if err != nil {
		t.Fatal(err)
	}
	if gotMan.Height != 7 || gotStore.Hash() != hash {
		t.Fatal("parallel snapshot did not round-trip")
	}
}

// BenchmarkSnapshotWrite measures the background snapshot writer on a
// ~64k-record store, serial (workers=1, the pre-optimization path) vs
// shard-parallel encoding. The on-disk format is identical in both modes;
// the delta is the CPU-bound serialization moving off a single core.
func BenchmarkSnapshotWrite(b *testing.B) {
	store := state.NewKVStore()
	var batch []types.KV
	val := make([]byte, 96)
	for i := range val {
		val[i] = byte(i)
	}
	for i := 0; i < 64<<10; i++ {
		batch = append(batch, types.KV{Key: fmt.Sprintf("acct%08d", i), Val: val})
	}
	store.Apply(batch)
	shards, hash := store.SnapshotShards()
	man := &Manifest{
		Height:    1,
		StateHash: hash,
		Shards:    uint64(len(shards)),
		Records:   countRecords(shards),
	}
	var bytesPerSnap int64
	for _, kvs := range shards {
		for _, kv := range kvs {
			bytesPerSnap += int64(len(kv.Key) + len(kv.Val) + 17)
		}
	}

	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = fmt.Sprintf("parallel-%d", defaultSnapshotWorkers())
		}
		b.Run(name, func(b *testing.B) {
			old := snapshotWorkers
			if workers == 0 {
				snapshotWorkers = defaultSnapshotWorkers()
			} else {
				snapshotWorkers = workers
			}
			b.Cleanup(func() { snapshotWorkers = old })
			dir := b.TempDir()
			b.SetBytes(bytesPerSnap)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				path := filepath.Join(dir, fmt.Sprintf("snap-%d.snap", i))
				if err := writeSnapshotFile(path, man, shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
