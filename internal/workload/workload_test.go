package workload

import (
	"strings"
	"testing"

	"parblockchain/internal/depgraph"
	"parblockchain/internal/types"
)

func apps(n int) []types.AppID {
	out := make([]types.AppID, n)
	for i := range out {
		out[i] = types.AppID(string(rune('A' + i)))
	}
	return out
}

// graphOf builds the dependency graph of a generated block, the way the
// orderers would.
func graphOf(txns []*types.Transaction) *depgraph.Graph {
	sets := make([]depgraph.RWSet, len(txns))
	for i, tx := range txns {
		sets[i] = depgraph.RWSet{Reads: tx.Op.Reads, Writes: tx.Op.Writes}
		sets[i].Normalize()
	}
	return depgraph.Build(sets, depgraph.Standard)
}

func genBlock(g *Generator, n int) []*types.Transaction {
	txns := make([]*types.Transaction, n)
	for i := range txns {
		txns[i] = g.Next("c1", uint64(i+1))
	}
	return txns
}

func TestNoContentionBlockIsConflictFree(t *testing.T) {
	g := New(Config{Apps: apps(3), Contention: 0, Seed: 1})
	txns := genBlock(g, 400)
	if got := graphOf(txns).EdgeCount(); got != 0 {
		t.Fatalf("no-contention block has %d edges, want 0", got)
	}
}

func TestFullContentionBlockIsChain(t *testing.T) {
	g := New(Config{Apps: apps(3), Contention: 1, Seed: 1})
	txns := genBlock(g, 100)
	graph := graphOf(txns)
	if !graph.IsChain() {
		t.Fatal("full-contention block must form a chain")
	}
	if got := graph.CriticalPathLen(); got != 100 {
		t.Fatalf("critical path = %d, want 100", got)
	}
	// Intra-application mode: every conflicting transaction belongs to
	// Apps[0], so the chain lives inside one application.
	for i, tx := range txns {
		if tx.App != "A" {
			t.Fatalf("tx %d app = %s, want A (intra-app contention)", i, tx.App)
		}
	}
}

func TestCrossAppContentionAlternatesApplications(t *testing.T) {
	g := New(Config{Apps: apps(3), Contention: 1, CrossApp: true, Seed: 1})
	txns := genBlock(g, 30)
	graph := graphOf(txns)
	if !graph.IsChain() {
		t.Fatal("cross-app full contention must still chain")
	}
	crossEdges := 0
	for i, succ := range graph.Succ {
		for _, j := range succ {
			if txns[i].App != txns[j].App {
				crossEdges++
			}
		}
	}
	if crossEdges == 0 {
		t.Fatal("cross-app mode must produce cross-application edges")
	}
	// Consecutive conflicting transactions must belong to different
	// applications ("a chain of transactions where consecutive
	// transactions belong to different applications").
	for i := 1; i < len(txns); i++ {
		if txns[i].App == txns[i-1].App {
			t.Fatalf("consecutive transactions %d,%d share app %s", i-1, i, txns[i].App)
		}
	}
}

func TestPartialContentionFraction(t *testing.T) {
	g := New(Config{Apps: apps(3), Contention: 0.2, Seed: 42})
	txns := genBlock(g, 2000)
	hot := 0
	for _, tx := range txns {
		for _, k := range tx.Op.Writes {
			if k == g.HotKey("A", 0) {
				hot++
				break
			}
		}
	}
	frac := float64(hot) / float64(len(txns))
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("hot fraction = %.3f, want ~0.20", frac)
	}
}

func TestDeterministicStream(t *testing.T) {
	g1 := New(Config{Apps: apps(2), Contention: 0.5, Seed: 99})
	g2 := New(Config{Apps: apps(2), Contention: 0.5, Seed: 99})
	for i := 0; i < 200; i++ {
		a := g1.Next("c1", uint64(i))
		b := g2.Next("c1", uint64(i))
		if a.Digest() != b.Digest() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

// TestSeedReproducesTrace is the regression contract behind the
// equivalence and race suites: the same seed must yield the same trace,
// a different seed must not, and the generator must report the seed it
// was built with so a failing trace can be replayed.
func TestSeedReproducesTrace(t *testing.T) {
	cfg := Config{Apps: apps(3), Contention: 0.4, Seed: 1234}
	a := New(cfg).Trace("c1", 300)
	b := New(cfg).Trace("c1", 300)
	for i := range a {
		if a[i].Digest() != b[i].Digest() {
			t.Fatalf("same seed diverged at tx %d", i)
		}
	}
	if got := New(cfg).Seed(); got != 1234 {
		t.Fatalf("Seed() = %d, want 1234", got)
	}
	cfg.Seed = 4321
	c := New(cfg).Trace("c1", 300)
	same := true
	for i := range a {
		if a[i].Digest() != c[i].Digest() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 300-tx trace")
	}
}

func TestGenesisCoversGeneratedAccounts(t *testing.T) {
	g := New(Config{Apps: apps(2), Contention: 0.5, ColdAccountsPerApp: 50, Seed: 7})
	genesis := make(map[types.Key]bool)
	for _, kv := range g.Genesis() {
		genesis[kv.Key] = true
	}
	for i := 0; i < 500; i++ {
		tx := g.Next("c1", uint64(i))
		// The transfer source must always be funded in genesis or be a
		// hot account.
		from := tx.Op.Params[0]
		if !genesis[from] {
			t.Fatalf("tx %d transfers from unfunded account %s", i, from)
		}
	}
}

func TestAbortFractionInjectsFailures(t *testing.T) {
	g := New(Config{Apps: apps(1), AbortFraction: 1.0, Seed: 3})
	tx := g.Next("c1", 1)
	if tx.Op.Params[0] != g.poorKey("A") {
		t.Fatalf("abort txn should draw from the poor account, got %s", tx.Op.Params[0])
	}
	// The poor account must not be funded.
	for _, kv := range g.Genesis() {
		if kv.Key == g.poorKey("A") {
			t.Fatal("poor account must stay unfunded")
		}
	}
}

func TestColdKeysCycleWithoutIntraBlockReuse(t *testing.T) {
	g := New(Config{Apps: apps(1), Contention: 0, ColdAccountsPerApp: 1000, Seed: 5})
	seen := make(map[types.Key]int)
	txns := genBlock(g, 400) // 800 cold accounts used, under the pool size
	for i, tx := range txns {
		for _, k := range tx.Op.Writes {
			if prev, dup := seen[k]; dup {
				t.Fatalf("key %s reused by txns %d and %d", k, prev, i)
			}
			seen[k] = i
		}
	}
}

func TestFinalizeStampsIdentityAndSignature(t *testing.T) {
	g := New(Config{Apps: apps(1), Seed: 1})
	tx := g.Next("client-7", 42)
	Finalize(tx, 12345, func(d []byte) []byte { return []byte("sig") })
	if tx.ID == "" {
		t.Fatal("Finalize must assign an ID")
	}
	if tx.SubmitUnixNano != 12345 {
		t.Fatal("Finalize must stamp the submit time")
	}
	if string(tx.Sig) != "sig" {
		t.Fatal("Finalize must attach the signature")
	}
	// Two different transactions from the same client must get distinct
	// IDs.
	tx2 := g.Next("client-7", 43)
	Finalize(tx2, 12345, func(d []byte) []byte { return []byte("sig") })
	if tx.ID == tx2.ID {
		t.Fatal("IDs must be unique per (client, ts)")
	}
}

// TestAbortHotColdBandsExact pins the band partition in Next: with fault
// injection enabled the hot fraction must be the configured Contention,
// not (1-AbortFraction)·Contention. Before the single-draw fix, the
// chained draws made this test fail with hot ≈ 0.24 instead of 0.30.
func TestAbortHotColdBandsExact(t *testing.T) {
	const (
		n          = 100000
		abortFrac  = 0.2
		contention = 0.3
		tol        = 0.01 // ±1% absolute over 100k draws (σ ≈ 0.0014)
	)
	g := New(Config{Apps: apps(2), Contention: contention, AbortFraction: abortFrac, Seed: 17})
	aborts, hots := 0, 0
	for i := 0; i < n; i++ {
		tx := g.Next("c1", uint64(i))
		from := tx.Op.Params[0]
		switch {
		case from == g.poorKey(tx.App):
			aborts++
		case strings.Contains(from, "/hot"):
			hots++
		}
	}
	if got := float64(aborts) / n; got < abortFrac-tol || got > abortFrac+tol {
		t.Fatalf("abort fraction = %.4f, want %.2f ± %.2f", got, abortFrac, tol)
	}
	if got := float64(hots) / n; got < contention-tol || got > contention+tol {
		t.Fatalf("hot fraction = %.4f, want %.2f ± %.2f (the pre-fix chained draws gave %.2f)",
			got, contention, tol, (1-abortFrac)*contention)
	}
}

// TestZipfSkewedHotKeys covers the Skew knob: a skewed stream stays
// seed-reproducible, concentrates conflicting traffic on low-numbered
// hot accounts, and Skew=0 keeps the exact round-robin cycling earlier
// versions produced (the bit-identity contract the equivalence suites
// rely on).
func TestZipfSkewedHotKeys(t *testing.T) {
	cfg := Config{Apps: apps(2), Contention: 1, HotAccounts: 64, Skew: 1.5, Seed: 5}
	a := New(cfg).Trace("c1", 500)
	b := New(cfg).Trace("c1", 500)
	counts := make(map[string]int)
	for i := range a {
		if a[i].Digest() != b[i].Digest() {
			t.Fatalf("skewed streams diverged at tx %d", i)
		}
		counts[a[i].Op.Params[0]]++
	}
	g := New(cfg)
	head, tail := 0, 0
	for key, n := range counts {
		if !strings.Contains(key, "/hot") {
			t.Fatalf("full-contention skewed stream drew non-hot source %s", key)
		}
		switch {
		case key <= g.HotKey("A", 7):
			head += n
		case key >= g.HotKey("A", 32):
			tail += n
		}
	}
	if head <= 2*tail {
		t.Fatalf("Zipf skew missing: hot00-07 drawn %d times, hot32+ %d times", head, tail)
	}

	// Skew=0: hot keys must cycle round-robin 0,1,2,... exactly as before.
	cfg.Skew = 0
	rr := New(cfg)
	for i := 0; i < 130; i++ {
		tx := rr.Next("c1", uint64(i))
		want := rr.HotKey(tx.App, i%64)
		if tx.Op.Params[0] != want {
			t.Fatalf("Skew=0 tx %d source = %s, want round-robin %s", i, tx.Op.Params[0], want)
		}
	}
}

func TestZipfSkewRejectsDegenerateS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(Skew=0.5) must panic: rand.NewZipf is undefined for s <= 1")
		}
	}()
	New(Config{Apps: apps(1), Skew: 0.5})
}
