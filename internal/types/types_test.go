package types

import (
	"reflect"
	"testing"
	"testing/quick"

	"parblockchain/internal/depgraph"
)

// blockGraph builds a small dependency graph for message-digest tests.
func blockGraph(n int, edges [][2]int) *depgraph.Graph {
	g := &depgraph.Graph{N: n, Succ: make([][]int32, n), Pred: make([][]int32, n)}
	for _, e := range edges {
		g.Succ[e[0]] = append(g.Succ[e[0]], int32(e[1]))
		g.Pred[e[1]] = append(g.Pred[e[1]], int32(e[0]))
	}
	return g
}

func sampleTx(app AppID, method string, reads, writes []Key) *Transaction {
	return &Transaction{
		App:      app,
		Client:   "c1",
		ClientTS: 7,
		Op: Operation{
			Method: method,
			Params: []string{"a", "b", "3"},
			Reads:  reads,
			Writes: writes,
		},
		SubmitUnixNano: 12345,
	}
}

func TestDigestDeterministic(t *testing.T) {
	a := sampleTx("app1", "transfer", []Key{"x"}, []Key{"x", "y"})
	b := sampleTx("app1", "transfer", []Key{"x"}, []Key{"x", "y"})
	if a.Digest() != b.Digest() {
		t.Fatal("identical transactions must have identical digests")
	}
}

func TestDigestSensitivity(t *testing.T) {
	base := sampleTx("app1", "transfer", []Key{"x"}, []Key{"x", "y"})
	mutations := map[string]func(*Transaction){
		"app":    func(tx *Transaction) { tx.App = "app2" },
		"client": func(tx *Transaction) { tx.Client = "c2" },
		"ts":     func(tx *Transaction) { tx.ClientTS = 8 },
		"method": func(tx *Transaction) { tx.Op.Method = "deposit" },
		"params": func(tx *Transaction) { tx.Op.Params = []string{"a"} },
		"reads":  func(tx *Transaction) { tx.Op.Reads = []Key{"z"} },
		"writes": func(tx *Transaction) { tx.Op.Writes = []Key{"x"} },
		"submit": func(tx *Transaction) { tx.SubmitUnixNano = 1 },
	}
	for name, mutate := range mutations {
		tx := sampleTx("app1", "transfer", []Key{"x"}, []Key{"x", "y"})
		mutate(tx)
		if tx.Digest() == base.Digest() {
			t.Errorf("mutating %s did not change the digest", name)
		}
	}
}

func TestDigestFieldBoundaries(t *testing.T) {
	// Length prefixes must prevent adjacent-field ambiguity: ("ab","c")
	// vs ("a","bc").
	a := &Transaction{App: "ab", Client: "c"}
	b := &Transaction{App: "a", Client: "bc"}
	if a.Digest() == b.Digest() {
		t.Fatal("field boundary ambiguity in digest encoding")
	}
}

func TestConflictsWith(t *testing.T) {
	cases := []struct {
		name string
		a, b *Transaction
		want bool
	}{
		{"write-write", sampleTx("a", "m", nil, []Key{"x"}), sampleTx("a", "m", nil, []Key{"x"}), true},
		{"read-write", sampleTx("a", "m", []Key{"x"}, nil), sampleTx("a", "m", nil, []Key{"x"}), true},
		{"write-read", sampleTx("a", "m", nil, []Key{"x"}), sampleTx("a", "m", []Key{"x"}, nil), true},
		{"read-read", sampleTx("a", "m", []Key{"x"}, nil), sampleTx("a", "m", []Key{"x"}, nil), false},
		{"disjoint", sampleTx("a", "m", []Key{"x"}, []Key{"y"}), sampleTx("a", "m", []Key{"p"}, []Key{"q"}), false},
	}
	for _, c := range cases {
		if got := c.a.ConflictsWith(c.b); got != c.want {
			t.Errorf("%s: ConflictsWith = %v, want %v", c.name, got, c.want)
		}
		if got := c.b.ConflictsWith(c.a); got != c.want {
			t.Errorf("%s (sym): ConflictsWith = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestNormalizeKeys(t *testing.T) {
	got := NormalizeKeys([]Key{"b", "a", "b", "c", "a"})
	want := []Key{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NormalizeKeys = %v, want %v", got, want)
	}
	if NormalizeKeys(nil) != nil {
		t.Fatal("nil should stay nil")
	}
	single := NormalizeKeys([]Key{"x"})
	if len(single) != 1 || single[0] != "x" {
		t.Fatalf("singleton mishandled: %v", single)
	}
}

func TestTxResultDigestExcludesReason(t *testing.T) {
	// Abort reasons may include node-local details; matching is on the
	// outcome (aborted yes/no + writes), so reasons must not affect the
	// digest... they must not, or matching across executors could fail
	// on formatting differences. Verify current behaviour: reason is
	// excluded.
	a := TxResult{TxID: "t", Index: 1, Aborted: true, AbortReason: "x"}
	b := TxResult{TxID: "t", Index: 1, Aborted: true, AbortReason: "y"}
	if a.Digest() != b.Digest() {
		// Digest includes reason: then deterministic contracts must
		// produce identical reasons; both behaviours are defensible, but
		// the implementation promises exclusion.
		t.Fatal("abort reason must not affect result digest")
	}
	c := TxResult{TxID: "t", Index: 1, Aborted: false}
	if a.Digest() == c.Digest() {
		t.Fatal("aborted flag must affect result digest")
	}
}

func TestTxResultDigestWrites(t *testing.T) {
	a := TxResult{TxID: "t", Writes: []KV{{Key: "k", Val: []byte("1")}}}
	b := TxResult{TxID: "t", Writes: []KV{{Key: "k", Val: []byte("2")}}}
	if a.Digest() == b.Digest() {
		t.Fatal("write values must affect result digest")
	}
}

func TestMerkleRoot(t *testing.T) {
	txns := []*Transaction{
		sampleTx("a", "m1", nil, []Key{"x"}),
		sampleTx("a", "m2", nil, []Key{"y"}),
		sampleTx("a", "m3", nil, []Key{"z"}),
	}
	root3 := TxMerkleRoot(txns)
	if root3.IsZero() {
		t.Fatal("non-empty root should not be zero")
	}
	if TxMerkleRoot(nil) != ZeroHash {
		t.Fatal("empty root should be zero")
	}
	if TxMerkleRoot(txns[:1]) == root3 {
		t.Fatal("prefix must change the root")
	}
	// Order sensitivity.
	swapped := []*Transaction{txns[1], txns[0], txns[2]}
	if TxMerkleRoot(swapped) == root3 {
		t.Fatal("reordering must change the root")
	}
}

func TestBlockHashChainsHeaderFields(t *testing.T) {
	txns := []*Transaction{sampleTx("a", "m", nil, []Key{"x"})}
	b1 := NewBlock(1, ZeroHash, txns)
	if !b1.VerifyTxRoot() {
		t.Fatal("fresh block must verify its root")
	}
	b2 := NewBlock(2, b1.Hash(), txns)
	if b2.Header.PrevHash != b1.Hash() {
		t.Fatal("prev hash not linked")
	}
	if b1.Hash() == b2.Hash() {
		t.Fatal("different headers must hash differently")
	}
	// Tampering with the body must break root verification.
	b1.Txns = append(b1.Txns, sampleTx("a", "m2", nil, []Key{"y"}))
	if b1.VerifyTxRoot() {
		t.Fatal("tampered block must fail root verification")
	}
}

func TestBlockApps(t *testing.T) {
	b := NewBlock(0, ZeroHash, []*Transaction{
		sampleTx("app2", "m", nil, nil),
		sampleTx("app1", "m", nil, nil),
		sampleTx("app2", "m", nil, nil),
	})
	got := b.Apps()
	want := []AppID{"app2", "app1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Apps = %v, want %v", got, want)
	}
}

func TestTransactionCodecRoundTrip(t *testing.T) {
	tx := sampleTx("app1", "transfer", []Key{"r1", "r2"}, []Key{"w1"})
	tx.ID = "tx-1"
	tx.Sig = []byte{1, 2, 3}
	decoded, err := UnmarshalTransaction(tx.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(tx, decoded) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", tx, decoded)
	}
}

func TestTransactionCodecRejectsTruncation(t *testing.T) {
	tx := sampleTx("app1", "transfer", []Key{"r"}, []Key{"w"})
	raw := tx.Marshal()
	for _, cut := range []int{0, 1, len(raw) / 2, len(raw) - 1} {
		if _, err := UnmarshalTransaction(raw[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestQuickCodecRoundTrip fuzzes the transaction codec with random field
// values via testing/quick.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(app, client, method string, params []string, ts uint64, sig []byte) bool {
		// The codec does not distinguish nil from empty slices; use the
		// canonical (nil) form for empties.
		if len(params) == 0 {
			params = nil
		}
		if len(sig) == 0 {
			sig = nil
		}
		tx := &Transaction{
			ID:       TxID(method),
			App:      AppID(app),
			Client:   NodeID(client),
			ClientTS: ts,
			Op:       Operation{Method: method, Params: params},
			Sig:      sig,
		}
		out, err := UnmarshalTransaction(tx.Marshal())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tx, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestByteReaderErrorsSticky(t *testing.T) {
	r := NewByteReader([]byte{0, 0})
	_ = r.U64() // truncated
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
	// Subsequent reads must not panic and must keep the error.
	_ = r.Str()
	_ = r.Blob()
	_ = r.Byte()
	if r.Err() == nil {
		t.Fatal("error must be sticky")
	}
}

func TestNewBlockMsgDigestBindsGraph(t *testing.T) {
	txns := []*Transaction{
		sampleTx("a", "m", []Key{"x"}, []Key{"x"}),
		sampleTx("a", "m", []Key{"x"}, []Key{"x"}),
	}
	block := NewBlock(0, ZeroHash, txns)
	m1 := &NewBlockMsg{Block: block, Orderer: "o1"}
	m2 := &NewBlockMsg{Block: block, Orderer: "o1"}
	if m1.Digest() != m2.Digest() {
		t.Fatal("same content must match")
	}
	// A graph with different edges must change the digest.
	m2.Graph = blockGraph(2, [][2]int{{0, 1}})
	if m1.Digest() == m2.Digest() {
		t.Fatal("graph shape must affect NEWBLOCK digest")
	}
}

func TestCommitMsgDigest(t *testing.T) {
	a := &CommitMsg{BlockNum: 1, Executor: "e1",
		Results: []TxResult{{TxID: "t1", Writes: []KV{{Key: "k", Val: []byte("v")}}}}}
	b := &CommitMsg{BlockNum: 1, Executor: "e1",
		Results: []TxResult{{TxID: "t1", Writes: []KV{{Key: "k", Val: []byte("w")}}}}}
	if a.Digest() == b.Digest() {
		t.Fatal("result content must affect COMMIT digest")
	}
	c := &CommitMsg{BlockNum: 1, Executor: "e2", Results: a.Results}
	if a.Digest() == c.Digest() {
		t.Fatal("executor identity must affect COMMIT digest")
	}
}

func TestApproxSizesArePositive(t *testing.T) {
	tx := sampleTx("app1", "transfer", []Key{"r"}, []Key{"w"})
	if tx.ApproxSize() <= 0 {
		t.Fatal("transaction size must be positive")
	}
	block := NewBlock(0, ZeroHash, []*Transaction{tx})
	if block.ApproxSize() <= tx.ApproxSize() {
		t.Fatal("block size must exceed its transactions")
	}
	nb := &NewBlockMsg{Block: block, Graph: blockGraph(1, nil)}
	if nb.ApproxSize() < block.ApproxSize() {
		t.Fatal("NEWBLOCK must be at least the block size")
	}
	cm := &CommitMsg{Results: []TxResult{{TxID: "t"}}}
	if cm.ApproxSize() <= 0 {
		t.Fatal("COMMIT size must be positive")
	}
	req := &StateSyncRequestMsg{Requester: "e1"}
	if req.ApproxSize() <= 0 {
		t.Fatal("STATE-SYNC-REQUEST size must be positive")
	}
	resp := &StateSyncResponseMsg{Records: [][]byte{{1, 2, 3}}, Responder: "e1"}
	if resp.ApproxSize() <= len(resp.Records[0]) {
		t.Fatal("STATE-SYNC-RESPONSE size must exceed its records")
	}
}
