package xov

import (
	"sync"
	"testing"
	"time"

	"parblockchain/internal/contract"
	"parblockchain/internal/transport"
	"parblockchain/internal/types"
)

func testNetwork(t *testing.T, mutate func(*Config)) *Network {
	t.Helper()
	net := transport.NewInMemNetwork(transport.InMemConfig{
		Latency: transport.ConstantLatency(100 * time.Microsecond),
	})
	cfg := Config{
		Orderers: []types.NodeID{"o1", "o2", "o3"},
		Peers:    []types.NodeID{"p1", "p2", "p3"},
		Clients:  []types.NodeID{"c1", "c2"},
		Agents: map[types.AppID][]types.NodeID{
			"app1": {"p1"},
			"app2": {"p2"},
		},
		Contracts: map[types.AppID]contract.Contract{
			"app1": contract.NewAccounting(),
			"app2": contract.NewAccounting(),
		},
		MaxBlockTxns:     8,
		MaxBlockInterval: 20 * time.Millisecond,
		Crypto:           true,
		Genesis: []types.KV{
			{Key: "app1/alice", Val: contract.EncodeBalance(1000)},
			{Key: "app1/bob", Val: contract.EncodeBalance(1000)},
			{Key: "app2/carol", Val: contract.EncodeBalance(1000)},
		},
		Net: net,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	nw, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	nw.Start()
	t.Cleanup(func() {
		nw.Stop()
		net.Close()
	})
	return nw
}

func TestXOVEndToEnd(t *testing.T) {
	nw := testNetwork(t, nil)
	client, err := nw.Client("c1")
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	tx := client.Prepare("app1", contract.TransferOp("app1/alice", "app1/bob", 100))
	result, attempts, err := client.Do(tx, 5*time.Second)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if result.Aborted {
		t.Fatalf("aborted after %d attempts: %s", attempts, result.AbortReason)
	}
	raw, _ := nw.ObserverStore().Get("app1/alice")
	if bal, _ := contract.Balance(raw); bal != 900 {
		t.Fatalf("alice balance = %d, want 900", bal)
	}
}

func TestXOVSimulationAbortIsNotRetried(t *testing.T) {
	nw := testNetwork(t, nil)
	client, err := nw.Client("c1")
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	tx := client.Prepare("app1", contract.TransferOp("app1/alice", "app1/bob", 99999))
	result, attempts, err := client.Do(tx, 5*time.Second)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !result.Aborted {
		t.Fatal("expected simulation abort")
	}
	if attempts != 1 {
		t.Fatalf("deterministic failure retried %d times", attempts)
	}
}

// TestXOVContentionCausesAbortsButConverges drives conflicting deposits
// at one hot key: MVCC validation must abort stale endorsements, clients
// must retry, and the final balance must equal the serial outcome.
func TestXOVContentionCausesAbortsButConverges(t *testing.T) {
	nw := testNetwork(t, nil)
	client, err := nw.Client("c1")
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	const n = 12
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		tx := client.Prepare("app2", contract.DepositOp("app2/carol", 10))
		wg.Add(1)
		go func(tx *types.Transaction) {
			defer wg.Done()
			if result, _, err := client.Do(tx, 20*time.Second); err != nil {
				t.Errorf("Do: %v", err)
			} else if result.Aborted {
				t.Errorf("final abort: %s", result.AbortReason)
			}
		}(tx)
	}
	wg.Wait()
	raw, _ := nw.ObserverStore().Get("app2/carol")
	if bal, _ := contract.Balance(raw); bal != 1000+10*n {
		t.Fatalf("carol balance = %d, want %d", bal, 1000+10*n)
	}
	if nw.TotalAborts() == 0 {
		t.Log("note: no MVCC aborts observed (timing-dependent); retries:", client.Retries())
	}
	// All peers converge.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := nw.Stores[0].Hash()
		if nw.Stores[1].Hash() == h && nw.Stores[2].Hash() == h {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peer states diverged")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestXOVEndorsementPolicy requires two matching endorsements and checks
// the flow still commits.
func TestXOVEndorsementPolicy(t *testing.T) {
	nw := testNetwork(t, func(cfg *Config) {
		cfg.Agents["app1"] = []types.NodeID{"p1", "p3"}
		cfg.Tau = map[types.AppID]int{"app1": 2}
	})
	client, err := nw.Client("c1")
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	tx := client.Prepare("app1", contract.TransferOp("app1/alice", "app1/bob", 10))
	result, _, err := client.Do(tx, 5*time.Second)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if result.Aborted {
		t.Fatalf("aborted: %s", result.AbortReason)
	}
}
