package execution

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"parblockchain/internal/telemetry"
	"parblockchain/internal/types"
)

// Scrape-under-load: Stats, Status, Healthy, and a full Prometheus
// scrape must be safe (and race-free under -race) while the pipeline is
// finalizing blocks. The scrapers hammer continuously while 50 blocks
// stream through; afterwards the scrape output must carry the executor
// families and the tracer must have complete records.
func TestTelemetryScrapeUnderLoad(t *testing.T) {
	tracer := telemetry.NewBlockTracer(8)
	h := newHarness(t, func(cfg *Config) {
		cfg.Tracer = tracer
		cfg.PipelineDepth = 4
	})
	reg := telemetry.NewRegistry()
	h.exec.RegisterTelemetry(reg, telemetry.Labels{"node": "e1"})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = h.exec.Stats()
				st := h.exec.Status()
				if st.PipelineDepth != 4 {
					t.Errorf("Status.PipelineDepth = %d", st.PipelineDepth)
					return
				}
				_ = h.exec.Healthy()
				buf.Reset()
				if err := reg.WritePrometheus(&buf); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}

	const blocks = 50
	for i := 0; i < blocks; i++ {
		h.sendBlock([]*types.Transaction{
			kvTx("app1", uint64(2*i+1), types.Key("a"), "x"),
			kvTx("app1", uint64(2*i+2), types.Key("b"), "y"),
		})
	}
	deadline := time.After(20 * time.Second)
	for i := 0; i < blocks; i++ {
		select {
		case <-h.commits:
		case <-deadline:
			t.Fatalf("only %d/%d blocks finalized", i, blocks)
		}
	}
	close(stop)
	wg.Wait()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`parblockchain_executor_blocks_committed_total{node="e1"} 50`,
		`parblockchain_executor_tx_committed_total{node="e1"} 100`,
		`parblockchain_ledger_height{node="e1"} 50`,
		`parblockchain_block_stage_seconds_count{node="e1",stage="execute"} 50`,
		`parblockchain_block_stage_seconds_bucket{node="e1",stage="total",le="+Inf"} 50`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape output missing %q", want)
		}
	}
	if st := h.exec.Status(); st.Height != blocks || st.Halted || st.Syncing {
		t.Fatalf("final status = %+v", st)
	}
	if err := h.exec.Healthy(); err != nil {
		t.Fatalf("Healthy after drain: %v", err)
	}
	slow := tracer.Slowest()
	if len(slow) != 8 {
		t.Fatalf("slowest ring holds %d records, want 8", len(slow))
	}
	for _, rec := range slow {
		if rec.TotalNanos <= 0 {
			t.Fatalf("trace %d has non-positive total %d", rec.Height, rec.TotalNanos)
		}
		for _, stage := range []string{"execute", "finalize", "externalize"} {
			if _, ok := rec.StageNanos[stage]; !ok {
				t.Fatalf("trace %d missing stage %q: %+v", rec.Height, stage, rec.StageNanos)
			}
		}
	}
	stages := tracer.StageSnapshot()
	if stages["total"].Count != blocks {
		t.Fatalf("total stage count = %d, want %d", stages["total"].Count, blocks)
	}
}

// A scrape on an idle executor with no tracer must still work: zeroed
// gauges, no histogram families, healthy status.
func TestTelemetryScrapeIdleNoTracer(t *testing.T) {
	h := newHarness(t, nil)
	reg := telemetry.NewRegistry()
	h.exec.RegisterTelemetry(reg, nil)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "parblockchain_executor_window_depth 0") {
		t.Errorf("idle scrape missing zero window depth:\n%s", out)
	}
	if strings.Contains(out, "parblockchain_block_stage_seconds") {
		t.Error("tracer families must not register when tracing is off")
	}
	if h.exec.Tracer() != nil {
		t.Error("Tracer() must be nil when unset")
	}
	if err := h.exec.Healthy(); err != nil {
		t.Fatalf("idle executor unhealthy: %v", err)
	}
}
