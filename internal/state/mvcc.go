package state

import (
	"sort"
	"sync"

	"parblockchain/internal/types"
)

// MVCCStore is a multi-version key-value store: every write creates a new
// version stamped with the writer's global sequence number, and reads are
// directed to the correct version for a reader's position in the log.
// Section III-A of the paper observes that under such a store the
// dependency-graph generator only needs to order "earlier writes, later
// reads" pairs; this store is the substrate for that ablation (experiment
// A2 in DESIGN.md).
//
// Like KVStore, the store is lock-striped across shardCount shards so
// concurrent readers and writers of disjoint keys do not contend, and it
// follows the package-level zero-copy ownership contract: values are
// retained and returned by reference.
//
// MVCCStore is safe for concurrent use.
type MVCCStore struct {
	shards [shardCount]mvccShard
}

type mvccShard struct {
	mu   sync.RWMutex
	data map[types.Key][]mvccVersion
	_    [64]byte // keep adjacent shards off each other's cache lines
}

type mvccVersion struct {
	seq uint64
	val []byte
}

// NewMVCCStore returns an empty multi-version store.
func NewMVCCStore() *MVCCStore {
	s := &MVCCStore{}
	for i := range s.shards {
		s.shards[i].data = make(map[types.Key][]mvccVersion)
	}
	return s
}

func (s *MVCCStore) shard(key types.Key) *mvccShard {
	return &s.shards[shardIndex(key)]
}

// Write installs a new version of key created by the transaction with the
// given global sequence number. Ownership of val transfers to the store.
// Versions of a key must be installed with non-decreasing sequence
// numbers by the commit path; concurrent writers of *different* keys may
// interleave freely.
func (s *MVCCStore) Write(seq uint64, key types.Key, val []byte) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	versions := sh.data[key]
	// Common case: append at the tail. Out-of-order installs (possible
	// when independent transactions commit out of block order) insert at
	// the right position to keep the chain sorted.
	if n := len(versions); n == 0 || versions[n-1].seq <= seq {
		sh.data[key] = append(versions, mvccVersion{seq: seq, val: val})
		return
	}
	i := sort.Search(len(versions), func(i int) bool { return versions[i].seq > seq })
	versions = append(versions, mvccVersion{})
	copy(versions[i+1:], versions[i:])
	versions[i] = mvccVersion{seq: seq, val: val}
	sh.data[key] = versions
}

// ReadAsOf returns the newest version of key with sequence number at most
// seq, i.e. the value a transaction at position seq in the log observes.
func (s *MVCCStore) ReadAsOf(seq uint64, key types.Key) ([]byte, bool) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	versions := sh.data[key]
	i := sort.Search(len(versions), func(i int) bool { return versions[i].seq > seq })
	if i == 0 {
		return nil, false
	}
	v := versions[i-1]
	if v.val == nil {
		return nil, false
	}
	return v.val, true
}

// Get returns the newest version of key, satisfying the Reader interface.
func (s *MVCCStore) Get(key types.Key) ([]byte, bool) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	versions := sh.data[key]
	if len(versions) == 0 {
		return nil, false
	}
	v := versions[len(versions)-1]
	if v.val == nil {
		return nil, false
	}
	return v.val, true
}

// VersionCount returns the number of retained versions for key, for tests
// and garbage-collection policies.
func (s *MVCCStore) VersionCount(key types.Key) int {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.data[key])
}

// Truncate discards all versions with sequence numbers strictly below
// floor for every key, keeping at least the newest version. It returns the
// number of versions discarded. Shards truncate independently; Truncate
// is not atomic with respect to concurrent writes, which is fine for its
// garbage-collection role.
func (s *MVCCStore) Truncate(floor uint64) int {
	dropped := 0
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.Lock()
		for k, versions := range sh.data {
			i := sort.Search(len(versions), func(i int) bool { return versions[i].seq >= floor })
			if i == len(versions) && i > 0 {
				i = len(versions) - 1 // always keep the newest version
			}
			if i > 0 {
				dropped += i
				sh.data[k] = append([]mvccVersion(nil), versions[i:]...)
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}

var _ Reader = (*MVCCStore)(nil)
