package ox

import (
	"sync"
	"testing"
	"time"

	"parblockchain/internal/contract"
	"parblockchain/internal/transport"
	"parblockchain/internal/types"
)

func testNetwork(t *testing.T) *Network {
	t.Helper()
	net := transport.NewInMemNetwork(transport.InMemConfig{
		Latency: transport.ConstantLatency(100 * time.Microsecond),
	})
	nw, err := New(Config{
		Orderers: []types.NodeID{"o1", "o2", "o3"},
		Peers:    []types.NodeID{"p1", "p2", "p3"},
		Clients:  []types.NodeID{"c1"},
		Contracts: map[types.AppID]contract.Contract{
			"app1": contract.NewAccounting(),
			"app2": contract.NewAccounting(),
		},
		MaxBlockTxns:     8,
		MaxBlockInterval: 20 * time.Millisecond,
		Crypto:           true,
		Genesis: []types.KV{
			{Key: "app1/alice", Val: contract.EncodeBalance(1000)},
			{Key: "app2/carol", Val: contract.EncodeBalance(1000)},
		},
		Net: net,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	nw.Start()
	t.Cleanup(func() {
		nw.Stop()
		net.Close()
	})
	return nw
}

func TestOXEndToEnd(t *testing.T) {
	nw := testNetwork(t)
	client, err := nw.Client("c1")
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	tx := client.Prepare("app1", contract.TransferOp("app1/alice", "app1/bob", 250))
	result, err := client.Do(tx, 5*time.Second)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if result.Aborted {
		t.Fatalf("transfer aborted: %s", result.AbortReason)
	}
	raw, ok := nw.ObserverStore().Get("app1/bob")
	if !ok {
		t.Fatal("bob missing")
	}
	if bal, _ := contract.Balance(raw); bal != 250 {
		t.Fatalf("bob balance = %d, want 250", bal)
	}
}

// TestOXSequentialConsistency checks that mixed concurrent traffic
// produces identical state on every peer and a correct serial outcome.
func TestOXSequentialConsistency(t *testing.T) {
	nw := testNetwork(t)
	client, err := nw.Client("c1")
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	const n = 20
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		tx := client.Prepare("app2", contract.DepositOp("app2/carol", 5))
		wg.Add(1)
		go func(tx *types.Transaction) {
			defer wg.Done()
			if result, err := client.Do(tx, 10*time.Second); err != nil {
				t.Errorf("Do: %v", err)
			} else if result.Aborted {
				t.Errorf("aborted: %s", result.AbortReason)
			}
		}(tx)
	}
	wg.Wait()
	raw, _ := nw.ObserverStore().Get("app2/carol")
	if bal, _ := contract.Balance(raw); bal != 1000+5*n {
		t.Fatalf("carol balance = %d, want %d", bal, 1000+5*n)
	}
	// Replica convergence.
	deadline := time.Now().Add(5 * time.Second)
	want := nw.Stores[0].Hash()
	for {
		if nw.Stores[1].Hash() == want && nw.Stores[2].Hash() == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peer states diverged")
		}
		time.Sleep(10 * time.Millisecond)
		want = nw.Stores[0].Hash()
	}
	for i, led := range nw.Ledgers {
		if err := led.Verify(); err != nil {
			t.Fatalf("peer %d ledger: %v", i, err)
		}
	}
}
