package types

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// This file implements a compact, deterministic binary codec for
// transactions and results. Consensus payloads and TCP frames use it
// instead of encoding/gob because the hot ordering path serializes every
// transaction once per submission, and gob's per-stream type headers and
// reflection cost dominate at the throughput targets of the evaluation.

// ErrCodec reports a malformed encoding.
var ErrCodec = errors.New("types: malformed encoding")

// ByteWriter builds length-prefixed binary encodings. The zero value is
// ready to use.
type ByteWriter struct {
	buf []byte
}

// NewByteWriter returns a writer with the given initial capacity.
func NewByteWriter(capacity int) *ByteWriter {
	return &ByteWriter{buf: make([]byte, 0, capacity)}
}

// writerPool recycles codec buffers across the hot encoding paths
// (transaction marshaling, message digests): the ordering pipeline
// serializes every transaction at least once per submission, and without
// pooling each encode pays the writer allocation plus its growth
// reallocations.
var writerPool = sync.Pool{
	New: func() any { return &ByteWriter{buf: make([]byte, 0, 512)} },
}

// maxPooledWriterCap bounds the capacity of buffers returned to the pool
// so one giant encoding does not pin memory for the process lifetime.
const maxPooledWriterCap = 64 << 10

// AcquireWriter returns an empty writer from the pool. Release it with
// ReleaseWriter when the encoding is no longer referenced; if the encoded
// bytes must outlive the writer, copy them out with CloneBytes first.
func AcquireWriter() *ByteWriter {
	w := writerPool.Get().(*ByteWriter)
	w.Reset()
	return w
}

// ReleaseWriter returns a writer to the pool. The caller must not touch
// the writer or any un-cloned Bytes() result afterwards.
func ReleaseWriter(w *ByteWriter) {
	if cap(w.buf) > maxPooledWriterCap {
		return
	}
	writerPool.Put(w)
}

// Reset empties the writer, retaining its capacity.
func (w *ByteWriter) Reset() { w.buf = w.buf[:0] }

// Len returns the number of bytes written so far, usable as an offset for
// PatchU64.
func (w *ByteWriter) Len() int { return len(w.buf) }

// PatchU64 overwrites the 8 bytes at off with a big-endian uint64,
// backfilling a length prefix written as a placeholder before the data.
func (w *ByteWriter) PatchU64(off int, v uint64) {
	binary.BigEndian.PutUint64(w.buf[off:], v)
}

// Bytes returns the accumulated encoding. The slice aliases the writer's
// buffer: it is valid only until the writer is reset or released.
func (w *ByteWriter) Bytes() []byte { return w.buf }

// CloneBytes returns an exact-size copy of the accumulated encoding,
// safe to retain after the writer is released.
func (w *ByteWriter) CloneBytes() []byte {
	return append(make([]byte, 0, len(w.buf)), w.buf...)
}

// U64 appends a fixed-width big-endian uint64.
func (w *ByteWriter) U64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

// I64 appends a fixed-width big-endian int64.
func (w *ByteWriter) I64(v int64) { w.U64(uint64(v)) }

// Byte appends a single byte.
func (w *ByteWriter) Byte(b byte) { w.buf = append(w.buf, b) }

// Blob appends a length-prefixed byte slice.
func (w *ByteWriter) Blob(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Str appends a length-prefixed string.
func (w *ByteWriter) Str(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Strs appends a count-prefixed list of strings.
func (w *ByteWriter) Strs(ss []string) {
	w.U64(uint64(len(ss)))
	for _, s := range ss {
		w.Str(s)
	}
}

// ByteReader decodes encodings produced by ByteWriter.
type ByteReader struct {
	buf []byte
	off int
	err error
}

// NewByteReader wraps an encoded buffer.
func NewByteReader(b []byte) *ByteReader { return &ByteReader{buf: b} }

// Err returns the first decoding error encountered.
func (r *ByteReader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *ByteReader) Remaining() int { return len(r.buf) - r.off }

func (r *ByteReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated at offset %d", ErrCodec, r.off)
	}
}

// Fail marks the reader as failed at the current offset, for enclosing
// decoders that detect a structurally impossible count or value. All
// subsequent reads return zero values and Err reports the failure.
func (r *ByteReader) Fail() { r.fail() }

// Bool writes a boolean as a single byte (1 or 0).
func (w *ByteWriter) Bool(b bool) {
	if b {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Bool reads a byte written by (*ByteWriter).Bool. Any value other than
// 0 or 1 is a malformed encoding and fails the reader — a flipped byte
// must surface as an error, not silently collapse to false.
func (r *ByteReader) Bool() bool {
	switch r.Byte() {
	case 1:
		return true
	case 0:
		return false
	default:
		r.fail()
		return false
	}
}

// FinishDecode completes a one-message decode: it returns any pending
// reader error, and fails on trailing bytes (a frame or record carries
// exactly one message), wrapping either with the message name.
func FinishDecode(r *ByteReader, what string) error {
	if err := r.Err(); err != nil {
		return fmt.Errorf("decoding %s: %w", what, err)
	}
	if n := r.Remaining(); n != 0 {
		return fmt.Errorf("decoding %s: %w: %d trailing bytes", what, ErrCodec, n)
	}
	return nil
}

// U64 reads a fixed-width big-endian uint64.
func (r *ByteReader) U64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// I64 reads a fixed-width big-endian int64.
func (r *ByteReader) I64() int64 { return int64(r.U64()) }

// Byte reads a single byte.
func (r *ByteReader) Byte() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Blob reads a length-prefixed byte slice (copied out of the buffer).
// The length is validated against the remaining input before conversion,
// so a hostile 2^63-scale prefix fails cleanly instead of overflowing
// int and panicking on the slice bounds.
func (r *ByteReader) Blob() []byte {
	n := r.U64()
	if r.err != nil || n > uint64(r.Remaining()) {
		r.fail()
		return nil
	}
	out := append([]byte(nil), r.buf[r.off:r.off+int(n)]...)
	r.off += int(n)
	return out
}

// Str reads a length-prefixed string. Like Blob, the length is checked
// against the remaining input before the int conversion.
func (r *ByteReader) Str() string {
	n := r.U64()
	if r.err != nil || n > uint64(r.Remaining()) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Strs reads a count-prefixed list of strings. A zero count decodes to
// nil so that round trips preserve nil slices. The count is bounded by
// the smallest possible encoding of one string (its 8-byte length
// prefix), so a hostile count cannot reserve a slice whose element count
// exceeds what the input could possibly back.
func (r *ByteReader) Strs() []string {
	n := r.U64()
	if r.err != nil || n > uint64(r.Remaining())/8 {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.Str())
	}
	return out
}

// Marshal encodes the transaction, including its signature.
func (t *Transaction) Marshal() []byte {
	w := AcquireWriter()
	defer ReleaseWriter(w)
	t.MarshalTo(w)
	return w.CloneBytes()
}

// MarshalTo appends the transaction's encoding to an existing writer,
// letting enclosing encodings (consensus payloads, endorsed transactions)
// embed it without an intermediate allocation.
func (t *Transaction) MarshalTo(w *ByteWriter) {
	w.Str(string(t.ID))
	w.Str(string(t.App))
	w.Str(string(t.Client))
	w.U64(t.ClientTS)
	w.Str(t.Op.Method)
	w.Strs(t.Op.Params)
	w.Strs(t.Op.Reads)
	w.Strs(t.Op.Writes)
	w.I64(t.SubmitUnixNano)
	w.Blob(t.Sig)
}

// UnmarshalTransaction decodes a transaction encoded by Marshal.
func UnmarshalTransaction(b []byte) (*Transaction, error) {
	r := NewByteReader(b)
	t := decodeTransaction(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("decoding transaction: %w", err)
	}
	return t, nil
}

// decodeTransaction consumes one transaction encoding from the reader;
// enclosing decoders (blocks, endorsed transactions) embed it.
func decodeTransaction(r *ByteReader) *Transaction {
	t := &Transaction{
		ID:       TxID(r.Str()),
		App:      AppID(r.Str()),
		Client:   NodeID(r.Str()),
		ClientTS: r.U64(),
	}
	t.Op.Method = r.Str()
	t.Op.Params = r.Strs()
	t.Op.Reads = r.Strs()
	t.Op.Writes = r.Strs()
	t.SubmitUnixNano = r.I64()
	t.Sig = r.Blob()
	return t
}

// ApproxSize estimates the transaction's wire size for bandwidth modeling.
func (t *Transaction) ApproxSize() int {
	size := len(t.ID) + len(t.App) + len(t.Client) + len(t.Op.Method) + len(t.Sig) + 64
	for _, p := range t.Op.Params {
		size += len(p) + 8
	}
	for _, k := range t.Op.Reads {
		size += len(k) + 8
	}
	for _, k := range t.Op.Writes {
		size += len(k) + 8
	}
	return size
}

// ApproxSize estimates the block's wire size.
func (b *Block) ApproxSize() int {
	size := 128
	for _, tx := range b.Txns {
		size += tx.ApproxSize()
	}
	return size
}

// ApproxSize estimates the message's wire size: the block plus roughly
// eight bytes per graph edge.
func (m *NewBlockMsg) ApproxSize() int {
	size := m.Block.ApproxSize() + len(m.Sig) + 64
	if m.Graph != nil {
		size += 8 * m.Graph.EdgeCount()
	}
	return size
}

// ApproxSize estimates the message's wire size from its results.
func (m *CommitMsg) ApproxSize() int {
	size := len(m.Sig) + len(m.Executor) + 32
	for i := range m.Results {
		size += resultApproxSize(&m.Results[i])
	}
	return size
}

func resultApproxSize(r *TxResult) int {
	size := len(r.TxID) + len(r.AbortReason) + 24
	for _, kv := range r.Writes {
		size += len(kv.Key) + len(kv.Val) + 16
	}
	return size
}
