package state

// This file implements the disk-resident cold tier behind TieredStore:
// an append-only log of checksummed segment files plus the in-memory
// index entries that locate live records inside them. The format mirrors
// the persist WAL's (magic + sequence header, CRC-32C framed records)
// but lives in this package because persist imports state, not the
// reverse.
//
// Segment layout:
//
//	magic (8)  | "PBCOLD01"
//	u64        | segment sequence number
//	frames     | [u32 body len][u32 CRC-32C(body)][body]
//
// A frame body is one cold record: Str key, presence byte (1 = value,
// 0 = tombstone), and for values the u64 version and Blob value. Records
// are appended by hot-cache eviction (dirty entries) and deletion
// (tombstones, so a recovery scan does not resurrect the on-disk
// record); within the log the newest record for a key wins. Segments are
// never rewritten in place; reclaiming space dead records pin is the
// compaction follow-on in ROADMAP.md.
//
// Durability contract: sealed segments are fsynced when they roll; the
// active segment is fsynced by Sync() before a snapshot manifest
// commits to its length. Recovery (OpenTieredStore) deletes segments a
// manifest does not list and truncates listed ones back to their
// recorded lengths, so bytes appended after the manifest's cut — which
// pair with WAL records that replay re-applies — are discarded rather
// than double-counted.

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"parblockchain/internal/types"
)

const (
	coldMagic     = "PBCOLD01"
	coldHeaderLen = 16 // magic + u64 sequence
	coldFrameLen  = 8  // u32 body length + u32 CRC-32C

	// maxColdRecordBytes bounds one frame body so a corrupt length prefix
	// fails the recovery scan cleanly instead of driving a giant
	// allocation.
	maxColdRecordBytes = 256 << 20
)

// DefaultColdSegmentBytes is the cold log's segment roll threshold.
const DefaultColdSegmentBytes = 16 << 20

// coldCastagnoli is the CRC-32C table for cold-segment frames — the same
// polynomial the persist WAL and snapshots use.
var coldCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// ColdSegRef names one cold segment and the byte length a snapshot
// manifest vouches for. Recovery truncates the file back to Len.
type ColdSegRef struct {
	Seq uint64
	Len int64
}

// coldRef locates one live record in the cold log: the absolute file
// offset and length of its value bytes (for a single pread on a cold
// Get), plus the version and cached entry digest so overwrites and
// deletes fold the old record out of the shard digest without touching
// disk.
type coldRef struct {
	seg  uint64
	off  int64 // absolute offset of the value bytes within the segment
	vlen uint32
	ver  uint64
	dig  [sha256.Size]byte
}

// coldRecord is one decoded cold-log frame body.
type coldRecord struct {
	key  types.Key
	ver  uint64
	val  []byte
	tomb bool
}

// marshalColdRecord encodes one frame body.
func marshalColdRecord(rec *coldRecord) []byte {
	w := types.AcquireWriter()
	defer types.ReleaseWriter(w)
	encodeColdRecord(w, rec.key, rec.ver, rec.val, rec.tomb)
	return w.CloneBytes()
}

func encodeColdRecord(w *types.ByteWriter, key types.Key, ver uint64, val []byte, tomb bool) {
	w.Str(string(key))
	if tomb {
		w.Byte(0)
		return
	}
	w.Byte(1)
	w.U64(ver)
	w.Blob(val)
}

// decodeColdRecord decodes one frame body. Malformed input returns an
// error, never panics (fuzzed).
func decodeColdRecord(body []byte) (coldRecord, error) {
	r := types.NewByteReader(body)
	rec := coldRecord{key: types.Key(r.Str())}
	switch r.Byte() {
	case 0:
		rec.tomb = true
	case 1:
		rec.ver = r.U64()
		rec.val = r.Blob()
		if rec.val == nil {
			rec.val = []byte{}
		}
	default:
		r.Fail()
	}
	if err := types.FinishDecode(r, "cold record"); err != nil {
		return coldRecord{}, err
	}
	return rec, nil
}

// coldValOffset returns the offset of the value bytes within a value
// record's frame body: key length prefix + key + presence byte +
// version + value length prefix.
func coldValOffset(keyLen int) int64 {
	return 8 + int64(keyLen) + 1 + 8 + 8
}

func coldSegmentName(seq uint64) string {
	return fmt.Sprintf("cold-%016x.seg", seq)
}

// parseColdSegmentName extracts the sequence number from a cold segment
// file name, reporting whether the name is one.
func parseColdSegmentName(name string) (uint64, bool) {
	const prefix, suffix = "cold-", ".seg"
	if len(name) != len(prefix)+16+len(suffix) ||
		!strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(prefix):len(prefix)+16], 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// coldLog is the append-only segment log. One mutex guards the writer
// state; reads of sealed bytes go straight to ReadAt without it. Lock
// order is always shard lock → log mutex, never the reverse.
type coldLog struct {
	mu       sync.Mutex
	dir      string
	segBytes int64

	seq     uint64 // active segment sequence
	f       *os.File
	w       *bufio.Writer
	size    int64 // logical size of the active segment, including buffered bytes
	flushed int64 // prefix of the active segment visible to ReadAt

	sealed map[uint64]*coldSegment
}

// coldSegment is one sealed (rolled) segment: fsynced, immutable, read
// through a retained handle.
type coldSegment struct {
	f    *os.File
	size int64
}

// newColdLog opens a log in dir with the given roll threshold and
// creates the first active segment with sequence firstSeq. The caller
// has already prepared dir (created it, pruned or truncated segments).
func newColdLog(dir string, segBytes int64, firstSeq uint64) (*coldLog, error) {
	if segBytes <= 0 {
		segBytes = DefaultColdSegmentBytes
	}
	l := &coldLog{dir: dir, segBytes: segBytes, sealed: make(map[uint64]*coldSegment)}
	if err := l.createSegmentLocked(firstSeq); err != nil {
		return nil, err
	}
	return l, nil
}

// createSegmentLocked creates and syncs a fresh active segment.
func (l *coldLog) createSegmentLocked(seq uint64) error {
	path := filepath.Join(l.dir, coldSegmentName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	var hdr [coldHeaderLen]byte
	copy(hdr[:8], coldMagic)
	binary.BigEndian.PutUint64(hdr[8:], seq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncColdDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.seq, l.f, l.size, l.flushed = seq, f, coldHeaderLen, coldHeaderLen
	l.w = bufio.NewWriterSize(f, 256<<10)
	return nil
}

// openSealed attaches an existing, already-truncated segment as sealed.
func (l *coldLog) openSealed(seq uint64, size int64) error {
	f, err := os.Open(filepath.Join(l.dir, coldSegmentName(seq)))
	if err != nil {
		return err
	}
	l.sealed[seq] = &coldSegment{f: f, size: size}
	return nil
}

// append writes one record and returns the ref locating its value bytes
// (zero ref for tombstones). The caller fills in the digest.
func (l *coldLog) append(key types.Key, ver uint64, val []byte, tomb bool) (coldRef, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.size >= l.segBytes && l.size > coldHeaderLen {
		if err := l.rollLocked(); err != nil {
			return coldRef{}, err
		}
	}
	w := types.AcquireWriter()
	defer types.ReleaseWriter(w)
	w.U64(0) // frame header placeholder: u32 len | u32 crc
	encodeColdRecord(w, key, ver, val, tomb)
	body := w.Bytes()[coldFrameLen:]
	w.PatchU64(0, uint64(len(body))<<32|uint64(crc32.Checksum(body, coldCastagnoli)))
	if _, err := l.w.Write(w.Bytes()); err != nil {
		return coldRef{}, err
	}
	frameStart := l.size
	l.size += int64(len(w.Bytes()))
	if tomb {
		return coldRef{}, nil
	}
	return coldRef{
		seg:  l.seq,
		off:  frameStart + coldFrameLen + coldValOffset(len(key)),
		vlen: uint32(len(val)),
		ver:  ver,
	}, nil
}

// rollLocked seals the active segment (flush + fsync, handle retained
// for reads) and starts the next one.
func (l *coldLog) rollLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.sealed[l.seq] = &coldSegment{f: l.f, size: l.size}
	return l.createSegmentLocked(l.seq + 1)
}

// readVal preads one record's value bytes. Safe without the log mutex
// for sealed bytes; reads into the active segment's unflushed suffix
// take the mutex to flush first. The returned slice is freshly
// allocated, so it satisfies the zero-copy ownership contract as a
// store-owned value.
func (l *coldLog) readVal(ref coldRef) ([]byte, error) {
	l.mu.Lock()
	var f *os.File
	switch {
	case ref.seg == l.seq:
		if ref.off+int64(ref.vlen) > l.flushed {
			if err := l.w.Flush(); err != nil {
				l.mu.Unlock()
				return nil, err
			}
			l.flushed = l.size
		}
		f = l.f
	default:
		ss, ok := l.sealed[ref.seg]
		if !ok {
			l.mu.Unlock()
			return nil, fmt.Errorf("cold segment %d not open", ref.seg)
		}
		f = ss.f
	}
	l.mu.Unlock()
	buf := make([]byte, ref.vlen)
	if _, err := f.ReadAt(buf, ref.off); err != nil {
		return nil, fmt.Errorf("cold segment %d @%d: %w", ref.seg, ref.off, err)
	}
	return buf, nil
}

// segmentRefs flushes the writer and returns every segment with its
// current durable-after-Sync length, sorted by sequence — the manifest
// a snapshot commits to. The caller must prevent concurrent appends
// (TieredStore.CaptureSnapshot holds every shard lock, and appends only
// happen under a shard lock).
func (l *coldLog) segmentRefs() ([]ColdSegRef, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return nil, err
	}
	l.flushed = l.size
	refs := make([]ColdSegRef, 0, len(l.sealed)+1)
	for seq, ss := range l.sealed {
		refs = append(refs, ColdSegRef{Seq: seq, Len: ss.size})
	}
	refs = append(refs, ColdSegRef{Seq: l.seq, Len: l.size})
	sort.Slice(refs, func(i, j int) bool { return refs[i].Seq < refs[j].Seq })
	return refs, nil
}

// sync makes every appended byte durable: sealed segments were fsynced
// at roll, so only the active segment (and nothing about the directory,
// unchanged since creation) needs it.
func (l *coldLog) sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	l.flushed = l.size
	return l.f.Sync()
}

// reset closes and deletes every segment and starts an empty log at
// sequence 1 (Backend.Reset: state sync replaces the whole state).
func (l *coldLog) reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var firstErr error
	record := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	record(l.f.Close())
	record(os.Remove(filepath.Join(l.dir, coldSegmentName(l.seq))))
	for seq, ss := range l.sealed {
		record(ss.f.Close())
		record(os.Remove(filepath.Join(l.dir, coldSegmentName(seq))))
	}
	l.sealed = make(map[uint64]*coldSegment)
	if err := l.createSegmentLocked(1); err != nil {
		record(err)
	}
	return firstErr
}

// close flushes and closes every handle.
func (l *coldLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var firstErr error
	if err := l.w.Flush(); err != nil {
		firstErr = err
	}
	if err := l.f.Close(); firstErr == nil {
		firstErr = err
	}
	for _, ss := range l.sealed {
		if err := ss.f.Close(); firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// scanColdSegment streams one segment's frames in append order, calling
// apply for each decoded record with the ref locating its value bytes.
// Any malformed frame is an error: recovery truncated the file to a
// manifest-recorded length, so unlike the WAL there is no legitimate
// torn tail to tolerate.
func scanColdSegment(path string, wantSeq uint64, apply func(rec coldRecord, ref coldRef)) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [coldHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("%s: header: %w", path, err)
	}
	if string(hdr[:8]) != coldMagic {
		return fmt.Errorf("%s: bad magic", path)
	}
	if seq := binary.BigEndian.Uint64(hdr[8:]); seq != wantSeq {
		return fmt.Errorf("%s: header sequence %d, want %d", path, seq, wantSeq)
	}
	off := int64(coldHeaderLen)
	var frame [coldFrameLen]byte
	body := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("%s @%d: frame header: %w", path, off, err)
		}
		n := binary.BigEndian.Uint32(frame[:4])
		crc := binary.BigEndian.Uint32(frame[4:])
		if n > maxColdRecordBytes {
			return fmt.Errorf("%s @%d: frame of %d bytes exceeds limit", path, off, n)
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return fmt.Errorf("%s @%d: frame body: %w", path, off, err)
		}
		if crc32.Checksum(body, coldCastagnoli) != crc {
			return fmt.Errorf("%s @%d: frame checksum mismatch", path, off)
		}
		rec, err := decodeColdRecord(body)
		if err != nil {
			return fmt.Errorf("%s @%d: %w", path, off, err)
		}
		ref := coldRef{seg: wantSeq, ver: rec.ver, vlen: uint32(len(rec.val))}
		if !rec.tomb {
			ref.off = off + coldFrameLen + coldValOffset(len(rec.key))
		}
		apply(rec, ref)
		off += coldFrameLen + int64(n)
	}
}

// syncColdDir fsyncs the cold directory so a just-created segment's
// entry survives a crash (mirrors persist.syncDir; duplicated to keep
// the import direction persist → state).
func syncColdDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
