package pbft

import (
	"bytes"
	"reflect"
	"testing"

	"parblockchain/internal/types"
)

func testDigest(b byte) types.Hash {
	var h types.Hash
	for i := range h {
		h[i] = b
	}
	return h
}

// TestWireRoundTrips pins every PBFT wire codec: decode(encode(m)) == m
// for each protocol message, including the nested certificate carriers.
func TestWireRoundTrips(t *testing.T) {
	pre := PrePrepare{View: 2, Seq: 7, Digest: testDigest(1),
		Batch: [][]byte{[]byte("a"), []byte("bb")}}
	vc := ViewChange{NewView: 3, LastDelivered: 6, Prepared: []PreparedCert{
		{Seq: 7, View: 2, Digest: testDigest(1), Batch: [][]byte{[]byte("a")}},
		{Seq: 8, View: 2, Digest: testDigest(2)},
	}}
	nv := NewView{View: 3, LastDelivered: 6, PrePrepares: []PrePrepare{
		{View: 3, Seq: 7, Digest: testDigest(1), Batch: [][]byte{[]byte("a"), []byte("bb")}},
		{View: 3, Seq: 8, Digest: testDigest(2)},
	}}
	cases := []struct {
		name   string
		msg    any
		enc    []byte
		decode func([]byte) (any, error)
	}{
		{"Forward", Forward{Payload: []byte("p")}, Forward{Payload: []byte("p")}.Marshal(),
			func(b []byte) (any, error) { return UnmarshalForward(b) }},
		{"PrePrepare", pre, pre.Marshal(),
			func(b []byte) (any, error) { return UnmarshalPrePrepare(b) }},
		{"EmptyPrePrepare", PrePrepare{View: 1, Seq: 2}, PrePrepare{View: 1, Seq: 2}.Marshal(),
			func(b []byte) (any, error) { return UnmarshalPrePrepare(b) }},
		{"Prepare", Prepare{View: 2, Seq: 7, Digest: testDigest(3)},
			Prepare{View: 2, Seq: 7, Digest: testDigest(3)}.Marshal(),
			func(b []byte) (any, error) { return UnmarshalPrepare(b) }},
		{"Commit", Commit{View: 2, Seq: 7, Digest: testDigest(3)},
			Commit{View: 2, Seq: 7, Digest: testDigest(3)}.Marshal(),
			func(b []byte) (any, error) { return UnmarshalCommit(b) }},
		{"ViewChange", vc, vc.Marshal(),
			func(b []byte) (any, error) { return UnmarshalViewChange(b) }},
		{"EmptyViewChange", ViewChange{NewView: 1}, ViewChange{NewView: 1}.Marshal(),
			func(b []byte) (any, error) { return UnmarshalViewChange(b) }},
		{"NewView", nv, nv.Marshal(),
			func(b []byte) (any, error) { return UnmarshalNewView(b) }},
		{"EmptyNewView", NewView{View: 1}, NewView{View: 1}.Marshal(),
			func(b []byte) (any, error) { return UnmarshalNewView(b) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := c.decode(c.enc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, c.msg) {
				t.Fatalf("round trip changed the message: %#v != %#v", got, c.msg)
			}
			if _, err := c.decode(append(append([]byte{}, c.enc...), 0x00)); err == nil {
				t.Fatal("trailing byte accepted")
			}
		})
	}
}

// TestWireMalformedRejected: truncated and hostile inputs error instead
// of panicking or over-allocating, at every nesting level.
func TestWireMalformedRejected(t *testing.T) {
	good := ViewChange{NewView: 3, LastDelivered: 6, Prepared: []PreparedCert{
		{Seq: 7, View: 2, Digest: testDigest(1), Batch: [][]byte{[]byte("x")}},
	}}.Marshal()
	for cut := 0; cut < len(good); cut++ {
		if _, err := UnmarshalViewChange(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A certificate count promising more certs than the input could hold
	// must fail before allocation.
	hostile := append([]byte{}, good[:16]...) // new view + last delivered
	hostile = append(hostile, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)
	if _, err := UnmarshalViewChange(hostile); err == nil {
		t.Fatal("hostile cert count accepted")
	}
	// Same for a nested batch count inside an otherwise plausible cert.
	inner := PrePrepare{View: 1, Seq: 2, Digest: testDigest(1)}.Marshal()
	hostile = append(inner[:len(inner)-8], 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)
	if _, err := UnmarshalPrePrepare(hostile); err == nil {
		t.Fatal("hostile batch count accepted")
	}
}

func FuzzUnmarshalPrePrepare(f *testing.F) {
	f.Add(PrePrepare{View: 2, Seq: 7, Digest: testDigest(1),
		Batch: [][]byte{[]byte("a"), []byte("bb")}}.Marshal())
	f.Add(PrePrepare{}.Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 56))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalPrePrepare(data)
		if err != nil {
			return
		}
		enc := m.Marshal()
		m2, err := UnmarshalPrePrepare(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if !bytes.Equal(enc, m2.Marshal()) {
			t.Fatal("PrePrepare encoding is not a fixed point")
		}
	})
}

func FuzzUnmarshalViewChange(f *testing.F) {
	f.Add(ViewChange{NewView: 3, LastDelivered: 6, Prepared: []PreparedCert{
		{Seq: 7, View: 2, Digest: testDigest(1), Batch: [][]byte{[]byte("a")}},
	}}.Marshal())
	f.Add(ViewChange{NewView: 1}.Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalViewChange(data)
		if err != nil {
			return
		}
		enc := m.Marshal()
		m2, err := UnmarshalViewChange(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if !bytes.Equal(enc, m2.Marshal()) {
			t.Fatal("ViewChange encoding is not a fixed point")
		}
	})
}

func FuzzUnmarshalNewView(f *testing.F) {
	f.Add(NewView{View: 3, LastDelivered: 6, PrePrepares: []PrePrepare{
		{View: 3, Seq: 7, Digest: testDigest(1), Batch: [][]byte{[]byte("a")}},
	}}.Marshal())
	f.Add(NewView{View: 1}.Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalNewView(data)
		if err != nil {
			return
		}
		enc := m.Marshal()
		m2, err := UnmarshalNewView(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if !bytes.Equal(enc, m2.Marshal()) {
			t.Fatal("NewView encoding is not a fixed point")
		}
	})
}
