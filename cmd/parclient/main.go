// Command parclient drives a TCP ParBlockchain cluster (see cmd/parnode)
// with the accounting workload and reports throughput and latency:
//
//	parclient -config cluster.json -id c1 -n 1000 -concurrency 32 -contention 0.2
//
// The client submits transfers to the orderers and receives commit
// notifications from the cluster's observer executor.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"parblockchain/internal/clustercfg"
	"parblockchain/internal/cryptoutil"
	"parblockchain/internal/metrics"
	"parblockchain/internal/transport"
	"parblockchain/internal/types"
	"parblockchain/internal/workload"
)

func main() {
	configPath := flag.String("config", "cluster.json", "cluster description file")
	id := flag.String("id", "c1", "client identity (must appear in the config)")
	n := flag.Int("n", 100, "number of transactions to commit")
	concurrency := flag.Int("concurrency", 8, "in-flight transactions")
	contention := flag.Float64("contention", 0, "fraction of conflicting transactions")
	timeout := flag.Duration("timeout", 30*time.Second, "per-transaction timeout")
	flag.Parse()
	if err := run(*configPath, types.NodeID(*id), *n, *concurrency, *contention, *timeout); err != nil {
		log.Fatal(err)
	}
}

func run(configPath string, id types.NodeID, n, concurrency int,
	contention float64, timeout time.Duration) error {
	cfg, err := clustercfg.Load(configPath)
	if err != nil {
		return err
	}
	transport.RegisterWireTypes(&types.RequestMsg{}, &types.CommitNotifyMsg{})
	book := cfg.AddrBook()
	listen, ok := book[id]
	if !ok {
		return fmt.Errorf("parclient: %s not present in %s", id, configPath)
	}
	ep, err := transport.NewTCPEndpoint(transport.TCPConfig{
		ID:         id,
		ListenAddr: listen,
		Peers:      book,
	})
	if err != nil {
		return err
	}
	defer ep.Close()

	var signer cryptoutil.Signer = cryptoutil.NoopSigner{NodeID: string(id)}
	if cfg.Crypto {
		signer = cryptoutil.DeterministicKeyPair(string(id))
	}

	// Route commit notifications to per-transaction waiters.
	var mu sync.Mutex
	waiters := make(map[types.TxID]chan *types.CommitNotifyMsg)
	go func() {
		for msg := range ep.Recv() {
			notify, ok := msg.Payload.(*types.CommitNotifyMsg)
			if !ok {
				continue
			}
			mu.Lock()
			ch := waiters[notify.TxID]
			delete(waiters, notify.TxID)
			mu.Unlock()
			if ch != nil {
				ch <- notify
			}
		}
	}()

	apps := make([]types.AppID, 0, len(cfg.Apps))
	for app := range cfg.AgentsOf() {
		apps = append(apps, app)
	}
	gen := workload.New(workload.Config{
		Apps:       apps,
		Contention: contention,
		// Cluster genesis funds only the configured accounts; point the
		// generator at a small pool covered by the node-side defaults.
		ColdAccountsPerApp: 1000,
		Seed:               time.Now().UnixNano(),
	})

	// NOTE: parnode seeds stores from cfg.Genesis; fund the generator's
	// accounts there or use "open" transactions first. For the demo
	// cluster, examples/tcpcluster writes a config whose genesis covers
	// this pool.
	orderers := cfg.OrdererIDs()
	rec := metrics.NewLatencyRecorder()
	var ts, rr atomic.Uint64
	var aborted, failed atomic.Int64
	work := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		work <- struct{}{}
	}
	close(work)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				tx := gen.Next(id, ts.Add(1))
				workload.Finalize(tx, time.Now().UnixNano(), func(d []byte) []byte {
					return signer.Sign(d)
				})
				ch := make(chan *types.CommitNotifyMsg, 1)
				mu.Lock()
				waiters[tx.ID] = ch
				mu.Unlock()
				target := orderers[rr.Add(1)%uint64(len(orderers))]
				opStart := time.Now()
				if err := ep.Send(target, &types.RequestMsg{Tx: tx}); err != nil {
					failed.Add(1)
					continue
				}
				select {
				case notify := <-ch:
					rec.Record(time.Since(opStart))
					if notify.Aborted {
						aborted.Add(1)
					}
				case <-time.After(timeout):
					mu.Lock()
					delete(waiters, tx.ID)
					mu.Unlock()
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats := rec.Snapshot()
	fmt.Printf("committed %d transactions in %s: %.0f tx/s\n",
		stats.Count, elapsed.Round(time.Millisecond),
		float64(stats.Count)/elapsed.Seconds())
	fmt.Printf("latency avg=%s p50=%s p95=%s p99=%s max=%s\n",
		stats.Mean.Round(time.Millisecond), stats.P50.Round(time.Millisecond),
		stats.P95.Round(time.Millisecond), stats.P99.Round(time.Millisecond),
		stats.Max.Round(time.Millisecond))
	fmt.Printf("aborted=%d failed=%d\n", aborted.Load(), failed.Load())
	return nil
}
