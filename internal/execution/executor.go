// Package execution implements the executor node of the OXII paradigm
// (Section IV-C): validation of NEWBLOCK messages against an orderer
// quorum, dependency-graph-driven parallel execution of the node's own
// applications' transactions (Algorithm 1), lazy multicast of execution
// results in COMMIT messages when another application needs them
// (Algorithm 2), and quorum-checked state updates (Algorithm 3).
//
// The three procedures of the paper run concurrently here as: a worker
// pool executing ready transactions, an actor loop owning all bookkeeping
// (scheduling state, vote counting, flush decisions), and the transport
// receive loop feeding the actor. Algorithm 1's "all Pre(x) in Ce ∪ Xe"
// predicate is implemented as an indegree countdown: a predecessor
// satisfies its successors on the first of {executed locally, committed
// globally}, which is equivalent to the paper's repeated scan but O(V+E)
// per block.
//
// # Cross-block pipelining
//
// The paper's executor runs block n to full commitment before touching
// block n+1, a barrier that caps throughput at (block latency x block
// size). Here the executor instead admits up to Config.PipelineDepth
// blocks into a sliding execution window: a cross-block stitcher
// (depgraph.Stitcher) adds ordering edges from an admitted block's
// transactions to conflicting, still-uncommitted transactions of earlier
// in-flight blocks, and each block's overlay chains to its predecessor's
// so reads observe the newest uncommitted write below them. Finalization
// (ledger append + store apply, Algorithm 3's quorum rules) remains
// strictly in block order, so the ledger and the incremental state hash
// are bit-identical to the barrier version at any depth; PipelineDepth=1
// restores the barrier exactly.
package execution

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"parblockchain/internal/contract"
	"parblockchain/internal/cryptoutil"
	"parblockchain/internal/depgraph"
	"parblockchain/internal/eventq"
	"parblockchain/internal/ledger"
	"parblockchain/internal/state"
	"parblockchain/internal/transport"
	"parblockchain/internal/types"
)

// CommitHook observes every finalized block with its final per-transaction
// results, in block order. Benchmarks and clients use it for latency and
// throughput accounting.
type CommitHook func(block *types.Block, results []types.TxResult)

// Config parameterizes one executor node.
type Config struct {
	// ID is this executor's identity.
	ID types.NodeID
	// Endpoint is the node's transport attachment; the executor owns its
	// Recv loop.
	Endpoint transport.Endpoint
	// Registry holds the contracts installed on this node; the node is an
	// agent exactly for the applications present in it.
	Registry *contract.Registry
	// AgentsOf maps every application to its agent set Sigma(A). Used to
	// validate that COMMIT results come from authorized agents.
	AgentsOf map[types.AppID][]types.NodeID
	// Tau maps applications to the required number of matching results
	// tau(A); missing entries default to 1.
	Tau map[types.AppID]int
	// OrderQuorum is the number of matching NEWBLOCK messages from
	// distinct orderers needed to act on a block (f+1 under PBFT).
	OrderQuorum int
	// Executors lists all executor nodes: the COMMIT multicast targets.
	Executors []types.NodeID
	// Store is the node's committed blockchain state.
	Store *state.KVStore
	// Ledger is the node's copy of the block ledger.
	Ledger *ledger.Ledger
	// Workers sizes the execution worker pool. Zero means 8.
	Workers int
	// PipelineDepth bounds the sliding window of blocks admitted into
	// execution before the oldest finalizes. 1 restores the strict
	// per-block barrier of the paper; zero means the default of 4.
	PipelineDepth int
	// GraphMode selects the conflict rule for cross-block stitching; it
	// must match the mode the orderers built the per-block graphs with.
	// Zero means depgraph.Standard.
	GraphMode depgraph.Mode
	// EagerCommit switches Algorithm 2 to its eager variant: a COMMIT per
	// executed transaction (n*m messages per block) instead of the lazy
	// cross-application cut rule. Exposed for the A1 ablation.
	EagerCommit bool
	// Signer signs outbound COMMIT messages.
	Signer cryptoutil.Signer
	// Verifier checks NEWBLOCK and COMMIT signatures.
	Verifier cryptoutil.Verifier
	// VerifySigs enables signature verification on inbound messages.
	VerifySigs bool
	// OnCommit, when non-nil, observes every finalized block.
	OnCommit CommitHook
	// NotifyClients makes this executor send a CommitNotifyMsg to each
	// transaction's client on finalization. Enable it on exactly one
	// executor of a TCP cluster; in-process deployments use OnCommit.
	NotifyClients bool
	// Logf receives diagnostic messages; nil uses log.Printf.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.OrderQuorum <= 0 {
		c.OrderQuorum = 1
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = DefaultPipelineDepth
	}
	if c.GraphMode == 0 {
		c.GraphMode = depgraph.Standard
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// DefaultPipelineDepth is the execution window used when Config leaves
// PipelineDepth zero.
const DefaultPipelineDepth = 4

// Stats exposes executor counters for experiments.
type Stats struct {
	// TxExecuted counts transactions executed locally.
	TxExecuted uint64
	// TxCommitted counts transactions committed (including aborted ones).
	TxCommitted uint64
	// TxAborted counts transactions whose final result is an abort.
	TxAborted uint64
	// CommitMsgsSent counts outbound COMMIT multicasts (per destination
	// set, not per destination).
	CommitMsgsSent uint64
	// BlocksCommitted counts finalized blocks.
	BlocksCommitted uint64
}

type eventKind int

const (
	evMsg eventKind = iota + 1
	evExecDone
	evStop
)

type event struct {
	kind   eventKind
	msg    transport.Message
	num    uint64
	idx    int
	result types.TxResult
}

type workItem struct {
	bs  *blockState
	idx int
}

// Executor is one executor node.
type Executor struct {
	cfg     Config
	mailbox *eventq.Queue[event]
	work    *eventq.Queue[workItem]

	// State owned by the actor loop.
	blocks         map[uint64]*blockState
	pendingCommits map[uint64][]*types.CommitMsg
	halted         bool

	// Pipeline state owned by the actor loop: the admission cursor, the
	// hash chain over admitted blocks (which may run ahead of the
	// ledger), the in-flight window in block order, and the cross-block
	// dependency stitcher.
	admitInit bool
	nextAdmit uint64
	admitPrev types.Hash
	window    []*blockState
	stitcher  *depgraph.Stitcher

	stats struct {
		executed  atomic.Uint64
		committed atomic.Uint64
		aborted   atomic.Uint64
		commitMsg atomic.Uint64
		blocks    atomic.Uint64
	}

	stopOnce sync.Once
	wg       sync.WaitGroup
}

// blockState tracks one in-flight block through validation, execution,
// and commitment.
type blockState struct {
	num uint64

	// Validation: matching NEWBLOCK messages per content digest.
	ordererVotes map[types.NodeID]types.Hash
	digestCount  map[types.Hash]int
	proposals    map[types.Hash]*types.NewBlockMsg
	valid        bool
	msg          *types.NewBlockMsg

	// Execution (set at start).
	started    bool
	overlay    *state.BlockOverlay
	isLocal    []bool
	remaining  []int32 // unsatisfied predecessor count
	satisfied  []bool  // predecessor event fired (Ce ∪ Xe membership)
	inflight   []bool
	execLocal  []bool // Xe membership
	localTotal int
	localDone  int

	// Commitment (Algorithm 3).
	committed   []bool // Ce membership
	final       []types.TxResult
	commitCount int
	complete    bool // every transaction committed; awaiting in-order finalize
	votes       []map[types.Hash]*voteRec
	voted       []map[types.NodeID]bool

	// Cross-block edges: successors in later in-flight blocks waiting on
	// this block's transactions, per transaction index.
	crossSucc [][]crossRef

	// Algorithm 2 buffer (this node's Xe awaiting multicast).
	outBuf []types.TxResult
}

// crossRef addresses one transaction of a later in-flight block.
type crossRef struct {
	bs  *blockState
	idx int
}

type voteRec struct {
	count  int
	result types.TxResult
}

// New creates an executor node. Call Start before use.
func New(cfg Config) *Executor {
	cfg = cfg.withDefaults()
	return &Executor{
		cfg:            cfg,
		mailbox:        eventq.New[event](),
		work:           eventq.New[workItem](),
		blocks:         make(map[uint64]*blockState),
		pendingCommits: make(map[uint64][]*types.CommitMsg),
		stitcher:       depgraph.NewStitcher(cfg.GraphMode),
	}
}

// Start launches the receive loop, the actor loop, and the worker pool.
func (e *Executor) Start() {
	e.wg.Add(2 + e.cfg.Workers)
	go e.recvLoop()
	go e.actorLoop()
	for i := 0; i < e.cfg.Workers; i++ {
		go e.worker()
	}
}

// Stop shuts the executor down.
func (e *Executor) Stop() {
	e.stopOnce.Do(func() {
		e.cfg.Endpoint.Close()
		e.mailbox.Push(event{kind: evStop})
		e.work.Close()
	})
	e.wg.Wait()
}

// Stats returns a snapshot of the executor's counters.
func (e *Executor) Stats() Stats {
	return Stats{
		TxExecuted:      e.stats.executed.Load(),
		TxCommitted:     e.stats.committed.Load(),
		TxAborted:       e.stats.aborted.Load(),
		CommitMsgsSent:  e.stats.commitMsg.Load(),
		BlocksCommitted: e.stats.blocks.Load(),
	}
}

// IsAgentFor reports whether this node is an agent of the application.
func (e *Executor) IsAgentFor(app types.AppID) bool {
	_, ok := e.cfg.Registry.Lookup(app)
	return ok
}

func (e *Executor) recvLoop() {
	defer e.wg.Done()
	for msg := range e.cfg.Endpoint.Recv() {
		e.mailbox.Push(event{kind: evMsg, msg: msg})
	}
}

// worker executes ready transactions against the block overlay. Reads are
// zero-copy on both levels: overlay hits are a lock-free map lookup and
// base-store hits take only a per-shard read lock, so workers executing
// non-conflicting transactions proceed without contending on shared state.
func (e *Executor) worker() {
	defer e.wg.Done()
	for {
		item, ok := e.work.Pop()
		if !ok {
			return
		}
		tx := item.bs.msg.Block.Txns[item.idx]
		result := types.TxResult{TxID: tx.ID, Index: item.idx}
		writes, err := e.cfg.Registry.Execute(tx.App, item.bs.overlay, tx.Op)
		if err != nil {
			result.Aborted = true
			result.AbortReason = err.Error()
		} else {
			result.Writes = writes
		}
		e.stats.executed.Add(1)
		e.mailbox.Push(event{kind: evExecDone, num: item.bs.num, idx: item.idx, result: result})
	}
}

func (e *Executor) actorLoop() {
	defer e.wg.Done()
	for {
		ev, ok := e.mailbox.Pop()
		if !ok {
			return
		}
		switch ev.kind {
		case evStop:
			e.mailbox.Close()
			return
		case evMsg:
			e.handleMsg(ev.msg)
		case evExecDone:
			e.handleExecDone(ev.num, ev.idx, ev.result)
		}
	}
}

func (e *Executor) handleMsg(msg transport.Message) {
	if e.halted {
		return
	}
	switch m := msg.Payload.(type) {
	case *types.NewBlockMsg:
		e.handleNewBlock(msg.From, m)
	case *types.CommitMsg:
		e.handleCommitMsg(msg.From, m)
	default:
		// Unknown payloads are ignored; executors only speak NEWBLOCK
		// and COMMIT.
	}
}

// handleNewBlock records one orderer's block announcement and validates
// the block once OrderQuorum matching announcements arrived.
func (e *Executor) handleNewBlock(from types.NodeID, m *types.NewBlockMsg) {
	if m.Block == nil || m.Orderer != from {
		return
	}
	num := m.Block.Header.Number
	if num < e.cfg.Ledger.Height() {
		return // already committed
	}
	if e.cfg.VerifySigs {
		digest := m.Digest()
		if err := e.cfg.Verifier.Verify(string(from), digest[:], m.Sig); err != nil {
			e.cfg.Logf("executor %s: bad NEWBLOCK signature from %s: %v", e.cfg.ID, from, err)
			return
		}
	}
	bs := e.getBlockState(num)
	if bs.valid {
		return
	}
	if _, dup := bs.ordererVotes[from]; dup {
		return
	}
	digest := m.Digest()
	bs.ordererVotes[from] = digest
	bs.digestCount[digest]++
	if _, ok := bs.proposals[digest]; !ok {
		bs.proposals[digest] = m
	}
	if bs.digestCount[digest] >= e.cfg.OrderQuorum {
		proposal := bs.proposals[digest]
		if !e.validateBlock(proposal) {
			e.cfg.Logf("executor %s: block %d failed structural validation", e.cfg.ID, num)
			return
		}
		bs.valid = true
		bs.msg = proposal
		bs.proposals = nil
		e.pump()
	}
}

// validateBlock checks the structural integrity of a quorum-backed block:
// the header's transaction commitment and the graph's shape.
func (e *Executor) validateBlock(m *types.NewBlockMsg) bool {
	if !m.Block.VerifyTxRoot() {
		return false
	}
	if m.Graph == nil || m.Graph.N != len(m.Block.Txns) {
		return false
	}
	return m.Graph.Validate() == nil
}

func (e *Executor) getBlockState(num uint64) *blockState {
	bs, ok := e.blocks[num]
	if !ok {
		bs = &blockState{
			num:          num,
			ordererVotes: make(map[types.NodeID]types.Hash),
			digestCount:  make(map[types.Hash]int),
			proposals:    make(map[types.Hash]*types.NewBlockMsg),
		}
		e.blocks[num] = bs
	}
	return bs
}

// pump drives the pipeline forward until it reaches a fixed point:
// completed blocks finalize in strict block order (freeing window slots),
// then validated blocks are admitted into the freed slots. Admission can
// complete a block immediately (empty blocks, or blocks whose buffered
// remote COMMITs already carry every result), so the loop repeats until
// neither step makes progress. Only the actor loop calls pump; it must
// never be invoked from inside admit/finalize/commitTx.
func (e *Executor) pump() {
	if !e.admitInit {
		e.nextAdmit = e.cfg.Ledger.Height()
		e.admitPrev = e.cfg.Ledger.LastHash()
		e.admitInit = true
	}
	for !e.halted {
		progress := false
		for len(e.window) > 0 && e.window[0].complete && !e.halted {
			bs := e.window[0]
			e.window = e.window[1:]
			e.finalize(bs)
			progress = true
		}
		for !e.halted && len(e.window) < e.cfg.PipelineDepth {
			bs, ok := e.blocks[e.nextAdmit]
			if !ok || !bs.valid || bs.started {
				break
			}
			e.admit(bs)
			progress = true
		}
		if !progress {
			return
		}
	}
}

// admit moves one validated block into the execution window: it chains
// the block's overlay onto the newest in-flight predecessor, seeds
// Algorithm 1's indegrees from the per-block graph plus the cross-block
// edges the stitcher derives, dispatches the ready transactions, and
// replays COMMIT messages that raced ahead of the block.
func (e *Executor) admit(bs *blockState) {
	if bs.msg.Block.Header.PrevHash != e.admitPrev {
		// A quorum of orderers signed a block that does not extend this
		// node's chain: beyond the fault assumption. Halt rather than
		// diverge.
		e.cfg.Logf("executor %s: block %d does not extend local chain; halting", e.cfg.ID, bs.num)
		e.halted = true
		return
	}
	bs.started = true
	e.nextAdmit++
	e.admitPrev = bs.msg.Block.Hash()
	// Reads must see the newest uncommitted write of any earlier in-flight
	// block, so the overlay chains through the window down to the store.
	var base state.Reader = e.cfg.Store
	if len(e.window) > 0 {
		base = e.window[len(e.window)-1].overlay
	}
	e.window = append(e.window, bs)
	n := len(bs.msg.Block.Txns)
	bs.overlay = state.NewBlockOverlay(base)
	bs.isLocal = make([]bool, n)
	bs.remaining = make([]int32, n)
	bs.satisfied = make([]bool, n)
	bs.inflight = make([]bool, n)
	bs.execLocal = make([]bool, n)
	bs.committed = make([]bool, n)
	bs.final = make([]types.TxResult, n)
	bs.votes = make([]map[types.Hash]*voteRec, n)
	bs.voted = make([]map[types.NodeID]bool, n)
	bs.crossSucc = make([][]crossRef, n)
	for i, tx := range bs.msg.Block.Txns {
		bs.isLocal[i] = e.IsAgentFor(tx.App)
		if bs.isLocal[i] {
			bs.localTotal++
		}
		bs.remaining[i] = int32(len(bs.msg.Graph.Pred[i]))
	}
	// Stitch the block into the window: an edge per conflicting,
	// not-yet-satisfied transaction of an earlier in-flight block. A
	// predecessor already in Ce ∪ Xe imposes no wait — its writes are
	// visible through the overlay chain. At depth 1 the window is empty
	// at every admission, so no cross edge can exist and the barrier
	// configuration skips the stitch bookkeeping wholesale.
	if e.cfg.PipelineDepth > 1 {
		sets := make([]depgraph.RWSet, n)
		for i, tx := range bs.msg.Block.Txns {
			sets[i] = depgraph.RWSet{Reads: tx.Op.Reads, Writes: tx.Op.Writes}
		}
		for j, preds := range e.stitcher.AddBlock(bs.num, sets) {
			for _, ref := range preds {
				pred, ok := e.blocks[ref.Block]
				if !ok || !pred.started || pred.satisfied[ref.Index] {
					continue
				}
				pred.crossSucc[ref.Index] = append(pred.crossSucc[ref.Index], crossRef{bs: bs, idx: j})
				bs.remaining[j]++
			}
		}
	}
	if n == 0 {
		bs.complete = true
		return
	}
	// Algorithm 1 seed: transactions with no unsatisfied predecessors.
	for i := 0; i < n; i++ {
		if bs.remaining[i] == 0 && bs.isLocal[i] {
			e.dispatch(bs, i)
		}
	}
	// Replay COMMIT messages that raced ahead of the block.
	if buffered := e.pendingCommits[bs.num]; len(buffered) > 0 {
		delete(e.pendingCommits, bs.num)
		for _, m := range buffered {
			e.applyCommitMsg(bs, m)
		}
	}
}

func (e *Executor) dispatch(bs *blockState, idx int) {
	if bs.inflight[idx] || bs.execLocal[idx] || bs.committed[idx] {
		return
	}
	bs.inflight[idx] = true
	e.work.Push(workItem{bs: bs, idx: idx})
}

// handleExecDone implements the completion half of Algorithm 1 plus the
// multicast decision of Algorithm 2.
func (e *Executor) handleExecDone(num uint64, idx int, result types.TxResult) {
	bs, ok := e.blocks[num]
	if !ok || !bs.started {
		return // block finalized while the worker ran (remote commit race)
	}
	bs.inflight[idx] = false
	if bs.execLocal[idx] {
		return
	}
	bs.execLocal[idx] = true
	bs.localDone++
	if !bs.committed[idx] && !result.Aborted {
		// Make the result visible to dependent local transactions (Xe).
		bs.overlay.Record(idx, result.Writes)
	}
	e.fireSatisfied(bs, idx)
	// Stage the result for multicast and vote for it ourselves.
	bs.outBuf = append(bs.outBuf, result)
	e.addVote(bs, idx, result, e.cfg.ID)

	// Algorithm 2: flush when a successor belongs to another application
	// (its agents need this result to proceed), eagerly when configured,
	// and always at the end of this node's work on the block so passive
	// nodes and non-agent executors can commit.
	flush := e.cfg.EagerCommit || bs.localDone == bs.localTotal
	if !flush {
		tx := bs.msg.Block.Txns[idx]
		for _, succ := range bs.msg.Graph.Succ[idx] {
			if bs.msg.Block.Txns[succ].App != tx.App {
				flush = true
				break
			}
		}
	}
	if flush {
		e.flushCommits(bs)
	}
	e.pump()
}

// flushCommits multicasts the staged results (the paper's "removes all
// the stored results from Xe and puts them in a commit message").
func (e *Executor) flushCommits(bs *blockState) {
	if len(bs.outBuf) == 0 {
		return
	}
	msg := &types.CommitMsg{
		BlockNum: bs.num,
		Results:  bs.outBuf,
		Executor: e.cfg.ID,
	}
	bs.outBuf = nil
	digest := msg.Digest()
	msg.Sig = e.cfg.Signer.Sign(digest[:])
	if err := transport.Multicast(e.cfg.Endpoint, e.cfg.Executors, msg); err != nil {
		e.cfg.Logf("executor %s: commit multicast for block %d: %v", e.cfg.ID, bs.num, err)
	}
	e.stats.commitMsg.Add(1)
}

// handleCommitMsg is the intake of Algorithm 3.
func (e *Executor) handleCommitMsg(from types.NodeID, m *types.CommitMsg) {
	if m.Executor != from {
		return
	}
	if m.BlockNum < e.cfg.Ledger.Height() {
		return // stale
	}
	if e.cfg.VerifySigs {
		digest := m.Digest()
		if err := e.cfg.Verifier.Verify(string(from), digest[:], m.Sig); err != nil {
			e.cfg.Logf("executor %s: bad COMMIT signature from %s: %v", e.cfg.ID, from, err)
			return
		}
	}
	bs, ok := e.blocks[m.BlockNum]
	if !ok || !bs.started {
		// The block has not reached this node (or its quorum) yet;
		// buffer and replay at start.
		e.pendingCommits[m.BlockNum] = append(e.pendingCommits[m.BlockNum], m)
		return
	}
	e.applyCommitMsg(bs, m)
	e.pump()
}

func (e *Executor) applyCommitMsg(bs *blockState, m *types.CommitMsg) {
	n := len(bs.msg.Block.Txns)
	for i := range m.Results {
		r := m.Results[i]
		if r.Index < 0 || r.Index >= n {
			continue
		}
		tx := bs.msg.Block.Txns[r.Index]
		if tx.ID != r.TxID {
			continue
		}
		// Algorithm 3 accepts a result only from agents of the
		// transaction's application.
		if !e.isAgentOf(tx.App, m.Executor) {
			continue
		}
		e.addVote(bs, r.Index, r, m.Executor)
	}
}

func (e *Executor) isAgentOf(app types.AppID, node types.NodeID) bool {
	for _, agent := range e.cfg.AgentsOf[app] {
		if agent == node {
			return true
		}
	}
	return false
}

// addVote counts one agent's result for a transaction; at tau(A) matching
// results the transaction commits (Algorithm 3's "Matching records in
// Re(x) >= tau(A)").
func (e *Executor) addVote(bs *blockState, idx int, r types.TxResult, voter types.NodeID) {
	if bs.committed[idx] {
		return
	}
	if bs.voted[idx] == nil {
		bs.voted[idx] = make(map[types.NodeID]bool, 2)
		bs.votes[idx] = make(map[types.Hash]*voteRec, 1)
	}
	if bs.voted[idx][voter] {
		return
	}
	bs.voted[idx][voter] = true
	d := r.Digest()
	rec, ok := bs.votes[idx][d]
	if !ok {
		rec = &voteRec{result: r}
		bs.votes[idx][d] = rec
	}
	rec.count++
	if rec.count >= e.tau(bs.msg.Block.Txns[idx].App) {
		e.commitTx(bs, idx, rec.result)
	}
}

func (e *Executor) tau(app types.AppID) int {
	if t, ok := e.cfg.Tau[app]; ok && t > 0 {
		return t
	}
	return 1
}

// commitTx marks one transaction committed, reflects its writes in the
// block overlay, and unblocks dependent transactions.
func (e *Executor) commitTx(bs *blockState, idx int, r types.TxResult) {
	bs.committed[idx] = true
	bs.final[idx] = r
	bs.votes[idx] = nil
	bs.voted[idx] = nil
	if !r.Aborted {
		bs.overlay.Record(idx, r.Writes)
	} else {
		e.stats.aborted.Add(1)
	}
	bs.commitCount++
	e.stats.committed.Add(1)
	e.fireSatisfied(bs, idx)
	if bs.commitCount == len(bs.msg.Block.Txns) {
		// Completion and finalization are decoupled under pipelining: a
		// later block can complete while an earlier one is still voting.
		// The pump finalizes completed blocks in strict block order.
		bs.complete = true
	}
}

// fireSatisfied propagates "predecessor is in Ce ∪ Xe" to successors —
// both within the block and across the in-flight window — dispatching any
// local transaction whose predecessors are all satisfied.
func (e *Executor) fireSatisfied(bs *blockState, idx int) {
	if bs.satisfied[idx] {
		return
	}
	bs.satisfied[idx] = true
	for _, succ := range bs.msg.Graph.Succ[idx] {
		bs.remaining[succ]--
		if bs.remaining[succ] == 0 && bs.isLocal[succ] {
			e.dispatch(bs, int(succ))
		}
	}
	for _, cr := range bs.crossSucc[idx] {
		cr.bs.remaining[cr.idx]--
		if cr.bs.remaining[cr.idx] == 0 && cr.bs.isLocal[cr.idx] {
			e.dispatch(cr.bs, cr.idx)
		}
	}
	bs.crossSucc[idx] = nil
}

// finalize applies the block's net effect to the committed store and
// appends the block to the ledger. The pump calls it for the oldest
// in-flight block only, so the ledger and the store advance in strict
// block order regardless of the pipeline depth.
//
// This is the commit boundary of the state ownership contract: the write
// sets reaching the overlay were freshly allocated (by contract execution
// or wire decoding) and are never mutated afterwards, so Final()'s value
// slices transfer to the store without a defensive copy.
func (e *Executor) finalize(bs *blockState) {
	// Flush any straggler results (e.g. a block whose last local
	// transactions committed via remote votes before local execution).
	e.flushCommits(bs)
	e.cfg.Store.Apply(bs.overlay.Final())
	// The successor chained its overlay onto this block's; now that the
	// writes are in the store, rebase it there so finalized overlays are
	// released and read chains stay bounded by the window.
	if len(e.window) > 0 {
		e.window[0].overlay.Rebase(e.cfg.Store)
	}
	entry := ledger.Entry{Block: bs.msg.Block, Results: bs.final}
	if err := e.cfg.Ledger.Append(entry); err != nil {
		e.cfg.Logf("executor %s: ledger append failed for block %d: %v; halting", e.cfg.ID, bs.num, err)
		e.halted = true
		return
	}
	e.stats.blocks.Add(1)
	if e.cfg.PipelineDepth > 1 {
		e.stitcher.Remove(bs.num)
	}
	delete(e.blocks, bs.num)
	delete(e.pendingCommits, bs.num)
	if e.cfg.OnCommit != nil {
		e.cfg.OnCommit(bs.msg.Block, bs.final)
	}
	if e.cfg.NotifyClients {
		for i, tx := range bs.msg.Block.Txns {
			_ = e.cfg.Endpoint.Send(tx.Client, &types.CommitNotifyMsg{
				TxID:        tx.ID,
				BlockNum:    bs.num,
				Aborted:     bs.final[i].Aborted,
				AbortReason: bs.final[i].AbortReason,
			})
		}
	}
}

// String identifies the executor for logs.
func (e *Executor) String() string {
	return fmt.Sprintf("executor(%s)", e.cfg.ID)
}
