package xov

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parblockchain/internal/cryptoutil"
	"parblockchain/internal/oxii"
	"parblockchain/internal/transport"
	"parblockchain/internal/types"
	"parblockchain/internal/workload"
)

// Client errors.
var (
	// ErrEndorseTimeout is returned when the endorsement policy cannot be
	// satisfied within the deadline.
	ErrEndorseTimeout = errors.New("xov: endorsement timed out")
	// ErrCommitTimeout is returned when an ordered transaction's
	// validation result does not arrive within the deadline.
	ErrCommitTimeout = errors.New("xov: commit timed out")
	// ErrRetriesExhausted is returned when a transaction keeps aborting
	// on MVCC conflicts.
	ErrRetriesExhausted = errors.New("xov: retries exhausted")
)

// ClientConfig parameterizes an XOV client driver.
type ClientConfig struct {
	// ID is the client identity.
	ID types.NodeID
	// Endpoint is the client's transport attachment; the client owns its
	// Recv loop (XOV clients participate in two protocol phases, which
	// is why moving them to a far zone hurts XOV most, Figure 7(a)).
	Endpoint transport.Endpoint
	// Signer signs transactions.
	Signer cryptoutil.Signer
	// Orderers lists the ordering nodes.
	Orderers []types.NodeID
	// Agents maps applications to endorsers.
	Agents map[types.AppID][]types.NodeID
	// Tau is the endorsement policy size per application (default 1).
	Tau map[types.AppID]int
	// Router resolves validation results observed at the observer peer.
	Router *oxii.CommitRouter
	// MaxRetries bounds resubmission after MVCC aborts (default 25).
	MaxRetries int
}

// Client drives the three-phase XOV flow: endorse, order, await
// validation; MVCC-aborted transactions are re-endorsed and resubmitted,
// which is how a Fabric application must respond to validation aborts.
type Client struct {
	cfg ClientConfig

	mu       sync.Mutex
	endorse  map[types.TxID]chan *EndorsementMsg
	ts       atomic.Uint64
	rr       atomic.Uint64
	retries  atomic.Uint64
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewClient builds and starts an XOV client driver.
func NewClient(cfg ClientConfig) *Client {
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 25
	}
	c := &Client{
		cfg:     cfg,
		endorse: make(map[types.TxID]chan *EndorsementMsg),
		stopCh:  make(chan struct{}),
	}
	c.wg.Add(1)
	go c.recvLoop()
	return c
}

// Stop terminates the client's receive loop and releases any goroutines
// blocked in Do.
func (c *Client) Stop() {
	c.stopOnce.Do(func() {
		close(c.stopCh)
		c.cfg.Endpoint.Close()
	})
	c.wg.Wait()
}

// ID returns the client identity.
func (c *Client) ID() types.NodeID { return c.cfg.ID }

// Retries returns the cumulative number of MVCC-conflict resubmissions,
// the visible cost of XOV under contention.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// Prepare stamps an operation into a transaction owned by this client.
func (c *Client) Prepare(app types.AppID, op types.Operation) *types.Transaction {
	return &types.Transaction{App: app, Client: c.cfg.ID, Op: op}
}

func (c *Client) recvLoop() {
	defer c.wg.Done()
	for msg := range c.cfg.Endpoint.Recv() {
		m, ok := msg.Payload.(*EndorsementMsg)
		if !ok || m.Endorser != msg.From {
			continue
		}
		c.mu.Lock()
		ch := c.endorse[m.TxID]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- m:
			default: // late or surplus endorsement
			}
		}
	}
}

// Do runs the full execute-order-validate cycle for the operation,
// retrying MVCC aborts, and returns the final result plus the number of
// attempts made.
func (c *Client) Do(tx *types.Transaction, timeout time.Duration) (types.TxResult, int, error) {
	deadline := time.Now().Add(timeout)
	for attempt := 1; ; attempt++ {
		// Fresh identity per attempt: a retried transaction is a new
		// request from the application's point of view.
		txn := &types.Transaction{
			App:      tx.App,
			Client:   c.cfg.ID,
			ClientTS: c.ts.Add(1),
			Op:       tx.Op,
		}
		workload.Finalize(txn, time.Now().UnixNano(), func(d []byte) []byte {
			return c.cfg.Signer.Sign(d)
		})
		etx, err := c.endorseOnce(txn, deadline)
		if err != nil {
			return types.TxResult{}, attempt, err
		}
		if etx.SimAborted {
			// Deterministic contract failure: reported without ordering.
			return types.TxResult{
				TxID: txn.ID, Aborted: true, AbortReason: etx.AbortReason,
			}, attempt, nil
		}
		result, err := c.orderAndAwait(txn, etx, deadline)
		if err != nil {
			return types.TxResult{}, attempt, err
		}
		if result.Aborted && result.AbortReason == AbortMVCCConflict {
			if attempt >= c.cfg.MaxRetries {
				return result, attempt, fmt.Errorf("%w after %d attempts", ErrRetriesExhausted, attempt)
			}
			c.retries.Add(1)
			continue
		}
		return result, attempt, nil
	}
}

// endorseOnce gathers tau(A) matching endorsements for the transaction.
func (c *Client) endorseOnce(txn *types.Transaction, deadline time.Time) (*EndorsedTx, error) {
	agents := c.cfg.Agents[txn.App]
	if len(agents) == 0 {
		return nil, fmt.Errorf("xov: no endorsers for application %s", txn.App)
	}
	need := 1
	if t, ok := c.cfg.Tau[txn.App]; ok && t > 0 {
		need = t
	}
	ch := make(chan *EndorsementMsg, len(agents))
	c.mu.Lock()
	c.endorse[txn.ID] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.endorse, txn.ID)
		c.mu.Unlock()
	}()
	for _, agent := range agents {
		if err := c.cfg.Endpoint.Send(agent, &EndorseRequestMsg{Tx: txn}); err != nil {
			return nil, fmt.Errorf("xov: endorse request to %s: %w", agent, err)
		}
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	byDigest := make(map[types.Hash][]*EndorsementMsg, 2)
	for {
		select {
		case <-c.stopCh:
			return nil, errors.New("xov: client stopped")
		case m := <-ch:
			d := m.ContentDigest()
			byDigest[d] = append(byDigest[d], m)
			if ms := byDigest[d]; len(ms) >= need {
				first := ms[0]
				etx := &EndorsedTx{
					Tx:          txn,
					ReadVers:    first.ReadVers,
					Writes:      first.Writes,
					SimAborted:  first.Aborted,
					AbortReason: first.AbortReason,
				}
				for _, m := range ms {
					etx.Endorsers = append(etx.Endorsers, m.Endorser)
					etx.Sigs = append(etx.Sigs, m.Sig)
				}
				return etx, nil
			}
		case <-timer.C:
			return nil, fmt.Errorf("%w: %s", ErrEndorseTimeout, txn.ID)
		}
	}
}

// orderAndAwait submits the endorsed transaction and waits for the
// observer peer's validation verdict.
func (c *Client) orderAndAwait(txn *types.Transaction, etx *EndorsedTx, deadline time.Time) (types.TxResult, error) {
	resultCh := c.cfg.Router.Register(txn.ID)
	target := c.cfg.Orderers[c.rr.Add(1)%uint64(len(c.cfg.Orderers))]
	if err := c.cfg.Endpoint.Send(target, &SubmitMsg{Payload: etx.Marshal()}); err != nil {
		c.cfg.Router.Cancel(txn.ID)
		return types.TxResult{}, fmt.Errorf("xov: submit to %s: %w", target, err)
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case <-c.stopCh:
		c.cfg.Router.Cancel(txn.ID)
		return types.TxResult{}, errors.New("xov: client stopped")
	case result, ok := <-resultCh:
		if !ok {
			return types.TxResult{}, errors.New("xov: network shut down")
		}
		return result, nil
	case <-timer.C:
		c.cfg.Router.Cancel(txn.ID)
		return types.TxResult{}, fmt.Errorf("%w: %s", ErrCommitTimeout, txn.ID)
	}
}
