// Package kafkaorder implements a Kafka-style ordering service: a fixed
// sequencing leader (the partition leader) replicates batches to broker
// members and commits once a quorum of acknowledgements arrives (Kafka's
// in-sync-replica acks). The paper's evaluation uses "a typical Kafka
// orderer setup with 3 ZooKeeper nodes, 4 Kafka brokers and 3 orderers";
// this package collapses that external service into an in-protocol
// equivalent with the same interface and crash-fault-tolerance model,
// as documented in DESIGN.md's substitution table.
//
// Leadership is static: Members[0] sequences. Crash fault tolerance for
// the *data* comes from broker replication; leader fail-over (Kafka's
// controller/ZooKeeper job) is out of scope, exactly as it is external to
// Fabric's ordering node implementation.
//
// With Config.Dir set, a member persists sequenced batches and commit
// decisions through the persist.RecordLog layer (storage.go): an Ack is
// only sent once the batch is fsynced — Kafka's log.flush durability —
// and on restart the member redelivers its committed prefix with stable
// sequence numbers and fetches anything it missed from the leader's
// durable log.
package kafkaorder

import (
	"log"
	"sync"
	"sync/atomic"
	"time"

	"parblockchain/internal/consensus"
	"parblockchain/internal/eventq"
	"parblockchain/internal/persist"
	"parblockchain/internal/types"
)

// Config parameterizes one kafkaorder member.
type Config struct {
	// ID is this member's identity.
	ID types.NodeID
	// Members lists all members; Members[0] is the sequencing leader.
	Members []types.NodeID
	// Sender is the outbound half of the node's transport endpoint.
	Sender consensus.Sender
	// Batch controls batching at the leader.
	Batch consensus.BatchConfig
	// AckQuorum is the number of members (including the leader) whose
	// acknowledgement commits a batch. Zero means a majority.
	AckQuorum int
	// Dir enables durable state: batches and commit decisions are
	// persisted under this directory and recovered on restart. Empty
	// keeps the member in memory.
	Dir string
	// Fsync is the log's fsync policy (group by default). Batches are
	// always synced before they are acknowledged; "never" opts out of
	// durability guarantees entirely.
	Fsync persist.FsyncPolicy
	// LogSegmentBytes rolls the durable log to a fresh segment once the
	// active one exceeds this size. Zero means
	// persist.DefaultLogSegmentBytes.
	LogSegmentBytes int64
	// Logf receives diagnostics; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// Protocol messages. Exported so transports can gob-register them.
type (
	// Forward carries a payload from a non-leader member to the leader.
	Forward struct {
		Payload []byte
	}
	// Append replicates a sequenced batch from the leader to brokers.
	Append struct {
		Seq   uint64
		Batch [][]byte
	}
	// Ack acknowledges the durable append of a batch at a broker.
	Ack struct {
		Seq uint64
	}
	// CommitAnn announces that a batch reached its ack quorum and may be
	// delivered.
	CommitAnn struct {
		Seq uint64
	}
	// Fetch asks the leader to re-send every batch and commit above the
	// sender's contiguous committed prefix — a durable broker's catch-up
	// request after a restart, served from the leader's log.
	Fetch struct {
		Have uint64
	}
)

type event struct {
	kind    eventKind
	from    types.NodeID
	msg     any
	payload []byte
	gen     uint64
}

type eventKind int

const (
	evStep eventKind = iota + 1
	evSubmit
	evBatchTimer
	evStop
)

type slot struct {
	batch     [][]byte
	acks      map[types.NodeID]bool
	committed bool
	delivered bool
}

// Node is one kafkaorder member.
type Node struct {
	cfg     Config
	mailbox *eventq.Queue[event]
	deliver *consensus.DeliveryQueue

	// State owned by the run goroutine.
	nextSeq      uint64 // leader: next batch seq
	lastDeliver  uint64
	entrySeq     uint64
	slots        map[uint64]*slot
	pending      [][]byte
	batchGen     uint64
	batchTimerOn bool
	done         chan struct{}

	// Durable state (nil without Config.Dir), owned by the run goroutine.
	storage  *storage
	started  atomic.Bool
	crashed  atomic.Bool
	stopOnce sync.Once
}

// New creates a kafkaorder member. Call Start before use. With cfg.Dir
// set, the durable log is recovered here: the slot table is rebuilt and
// the committed prefix will be redelivered (with stable sequence
// numbers) when the actor loop starts.
func New(cfg Config) (*Node, error) {
	cfg.Batch = cfg.Batch.Normalized()
	if cfg.AckQuorum <= 0 {
		cfg.AckQuorum = len(cfg.Members)/2 + 1
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	k := &Node{
		cfg:     cfg,
		mailbox: eventq.New[event](),
		deliver: consensus.NewDeliveryQueue(),
		slots:   make(map[uint64]*slot),
		done:    make(chan struct{}),
	}
	if cfg.Dir != "" {
		s, slots, maxSeq, err := openStorage(cfg.Dir, cfg.Fsync, cfg.LogSegmentBytes, cfg.Logf)
		if err != nil {
			return nil, err
		}
		k.storage = s
		k.slots = slots
		k.nextSeq = maxSeq
		// Our own durable batches count as self-acked; peer acks are not
		// durable and are re-collected live.
		for _, sl := range slots {
			if sl.batch != nil {
				sl.acks[cfg.ID] = true
			}
		}
	}
	return k, nil
}

// Leader returns the static sequencing leader.
func (k *Node) Leader() types.NodeID { return k.cfg.Members[0] }

// Start launches the actor loop.
func (k *Node) Start() {
	if !k.started.CompareAndSwap(false, true) {
		return
	}
	go k.run()
}

// Submit proposes a payload; non-leaders forward to the leader.
func (k *Node) Submit(payload []byte) error {
	k.mailbox.Push(event{kind: evSubmit, payload: payload})
	return nil
}

// Step feeds one inbound consensus message.
func (k *Node) Step(from types.NodeID, msg any) {
	k.mailbox.Push(event{kind: evStep, from: from, msg: msg})
}

// Committed returns the ordered entry stream.
func (k *Node) Committed() <-chan consensus.Entry { return k.deliver.Out() }

// Stop terminates the actor loop and closes the durable storage. Safe
// to call before Start (the storage is still released) and idempotent.
func (k *Node) Stop() {
	k.stopOnce.Do(func() {
		if k.started.Load() {
			k.mailbox.Push(event{kind: evStop})
			<-k.done
		} else {
			k.storage.close(k.crashed.Load())
		}
	})
}

// Crash stops the member simulating a process crash: unsynced log bytes
// are dropped instead of synced on close.
func (k *Node) Crash() {
	k.crashed.Store(true)
	k.Stop()
}

var _ consensus.Node = (*Node)(nil)
var _ consensus.Crasher = (*Node)(nil)

func (k *Node) run() {
	defer close(k.done)
	defer k.deliver.Close()
	defer func() { k.storage.close(k.crashed.Load()) }()
	if k.storage != nil {
		k.recover()
	}
	for {
		ev, ok := k.mailbox.Pop()
		if !ok {
			return
		}
		switch ev.kind {
		case evStop:
			k.mailbox.Close()
			return
		case evSubmit:
			k.handleSubmit(ev.payload)
		case evBatchTimer:
			if ev.gen == k.batchGen {
				k.batchTimerOn = false
				k.flush()
			}
		case evStep:
			k.handleStep(ev.from, ev.msg)
		}
	}
}

func (k *Node) isLeader() bool { return k.cfg.ID == k.Leader() }

// recover acts on the slot table rebuilt from the durable log: the
// committed prefix is redelivered (with the same sequence numbers as
// before the crash — the consumer's high-water mark dedupes it), the
// leader re-replicates batches that never reached their quorum, and a
// broker asks the leader for everything past its committed prefix.
func (k *Node) recover() {
	k.tryDeliver()
	if k.isLeader() {
		for seq := k.lastDeliver + 1; seq <= k.nextSeq; seq++ {
			if s := k.slots[seq]; s != nil && s.batch != nil {
				k.broadcast(Append{Seq: seq, Batch: s.batch})
				if s.committed {
					k.broadcast(CommitAnn{Seq: seq})
				}
			}
		}
	} else {
		_ = k.cfg.Sender.Send(k.Leader(), Fetch{Have: k.lastDeliver})
	}
}

// serveFetch re-sends, from the durable log, every batch and commit
// above the requester's committed prefix. Served from disk because
// delivered slots leave the in-memory table.
func (k *Node) serveFetch(from types.NodeID, have uint64) {
	if k.storage == nil || !k.isLeader() {
		return
	}
	k.storage.rangeAll(func(kind byte, seq uint64, batch [][]byte) {
		if seq <= have {
			return
		}
		switch kind {
		case recBatch:
			_ = k.cfg.Sender.Send(from, Append{Seq: seq, Batch: batch})
		case recCommit:
			_ = k.cfg.Sender.Send(from, CommitAnn{Seq: seq})
		}
	})
}

func (k *Node) broadcast(msg any) {
	for _, m := range k.cfg.Members {
		if m != k.cfg.ID {
			_ = k.cfg.Sender.Send(m, msg)
		}
	}
}

func (k *Node) handleSubmit(payload []byte) {
	if !k.isLeader() {
		_ = k.cfg.Sender.Send(k.Leader(), Forward{Payload: payload})
		return
	}
	k.pending = append(k.pending, payload)
	if len(k.pending) >= k.cfg.Batch.MaxMsgs {
		k.flush()
		return
	}
	if !k.batchTimerOn {
		k.batchTimerOn = true
		k.batchGen++
		gen := k.batchGen
		time.AfterFunc(time.Duration(k.cfg.Batch.MaxDelayMillis)*time.Millisecond, func() {
			k.mailbox.Push(event{kind: evBatchTimer, gen: gen})
		})
	}
}

func (k *Node) flush() {
	if len(k.pending) == 0 || !k.isLeader() {
		return
	}
	batch := k.pending
	k.pending = nil
	k.nextSeq++
	seq := k.nextSeq
	s := k.getSlot(seq)
	s.batch = batch
	s.acks[k.cfg.ID] = true
	if k.storage != nil {
		// The leader's own copy must be durable before replication: its
		// self-ack counts toward the quorum.
		k.storage.append(encodeBatchRecord(seq, batch))
	}
	k.broadcast(Append{Seq: seq, Batch: batch})
	k.checkCommit(seq)
}

func (k *Node) getSlot(seq uint64) *slot {
	s, ok := k.slots[seq]
	if !ok {
		s = &slot{acks: make(map[types.NodeID]bool)}
		k.slots[seq] = s
	}
	return s
}

func (k *Node) handleStep(from types.NodeID, msg any) {
	switch m := msg.(type) {
	case Forward:
		if k.isLeader() {
			k.handleSubmit(m.Payload)
		}
	case Append:
		if from != k.Leader() {
			return
		}
		if m.Seq <= k.lastDeliver {
			// Already delivered (hence durable here): a redundant
			// retransmit after a leader restart. Re-ack without re-logging.
			_ = k.cfg.Sender.Send(from, Ack{Seq: m.Seq})
			return
		}
		s := k.getSlot(m.Seq)
		if s.batch == nil {
			s.batch = m.Batch
			if k.storage != nil {
				// Ack semantics: the batch must survive this member's
				// crash before the leader counts it toward the quorum.
				k.storage.append(encodeBatchRecord(m.Seq, m.Batch))
			}
		}
		_ = k.cfg.Sender.Send(from, Ack{Seq: m.Seq})
	case Ack:
		if !k.isLeader() {
			return
		}
		s := k.getSlot(m.Seq)
		s.acks[from] = true
		k.checkCommit(m.Seq)
	case CommitAnn:
		if from != k.Leader() {
			return
		}
		if m.Seq <= k.lastDeliver {
			return // already delivered
		}
		s := k.getSlot(m.Seq)
		if !s.committed {
			s.committed = true
			if k.storage != nil {
				k.storage.append(encodeCommitRecord(m.Seq))
			}
		}
		k.tryDeliver()
	case Fetch:
		k.serveFetch(from, m.Have)
	}
}

// checkCommit runs at the leader: once the ack quorum is met the batch is
// durable on enough brokers to survive f crashes, so it commits.
func (k *Node) checkCommit(seq uint64) {
	s := k.slots[seq]
	if s == nil || s.committed || len(s.acks) < k.cfg.AckQuorum {
		return
	}
	s.committed = true
	if k.storage != nil {
		// The commit decision must be durable before it is announced: a
		// restarted leader must never forget (and re-sequence) a batch a
		// broker already delivered.
		k.storage.append(encodeCommitRecord(seq))
	}
	k.broadcast(CommitAnn{Seq: seq})
	k.tryDeliver()
}

func (k *Node) tryDeliver() {
	for {
		s, ok := k.slots[k.lastDeliver+1]
		if !ok || !s.committed || s.delivered || s.batch == nil {
			return
		}
		s.delivered = true
		k.lastDeliver++
		for _, payload := range s.batch {
			k.entrySeq++
			k.deliver.Push(consensus.Entry{Seq: k.entrySeq, Payload: payload})
		}
		delete(k.slots, k.lastDeliver)
	}
}
