package oxii

import (
	"path/filepath"
	"testing"
	"time"

	"parblockchain/internal/contract"
	"parblockchain/internal/persist"
	"parblockchain/internal/transport"
	"parblockchain/internal/types"
)

// durableConfig is the durability-test deployment: a single orderer (so
// block numbering is deterministic) and three executors persisting under
// dir, with a small snapshot interval so short runs exercise WAL
// truncation.
func durableConfig(net *transport.InMemNetwork, dir string) Config {
	return Config{
		Orderers:  []types.NodeID{"o1"},
		Executors: []types.NodeID{"e1", "e2", "e3"},
		Clients:   []types.NodeID{"c1"},
		Agents: map[types.AppID][]types.NodeID{
			"app1": {"e1", "e2", "e3"},
		},
		Contracts: map[types.AppID]contract.Contract{
			"app1": contract.NewAccounting(),
		},
		Consensus:        ConsensusKafka,
		MaxBlockTxns:     4,
		MaxBlockInterval: 20 * time.Millisecond,
		DataDir:          dir,
		SnapshotInterval: 2,
		Genesis: []types.KV{
			{Key: "app1/alice", Val: contract.EncodeBalance(10000)},
			{Key: "app1/bob", Val: contract.EncodeBalance(10000)},
		},
		Net:  net,
		Logf: func(string, ...any) {},
	}
}

// TestDurableNetworkRecovery runs a full network with durability on,
// stops it, and asserts (a) every executor's durable state recovers to
// exactly its live store and ledger, from snapshot + WAL tail; and (b) a
// network rebuilt on the same data directory resumes every executor at
// its durable height instead of genesis.
func TestDurableNetworkRecovery(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewInMemNetwork(transport.InMemConfig{})
	defer net.Close()

	nw, err := New(durableConfig(net, dir))
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	client, err := nw.Client("c1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		tx := client.Prepare("app1", contract.TransferOp("app1/alice", "app1/bob", 1))
		if _, err := client.Do(tx, 10*time.Second); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}
	type snapshot struct {
		hash   types.Hash
		height uint64
		tip    types.Hash
	}
	nw.Stop() // quiesces executors, then closes the durability managers
	live := make([]snapshot, len(nw.Executors))
	for i := range nw.Executors {
		live[i] = snapshot{
			hash:   nw.Stores[i].Hash(),
			height: nw.Ledgers[i].Height(),
			tip:    nw.Ledgers[i].LastHash(),
		}
		if live[i].height == 0 {
			t.Fatalf("executor %d finalized nothing", i)
		}
	}

	// (a) Raw recovery per executor directory.
	for i, id := range []string{"e1", "e2", "e3"} {
		mgr, rec, err := persist.Open(persist.Config{
			Dir: filepath.Join(dir, id), SnapshotInterval: 2,
			Logf: func(string, ...any) {},
		}, nil)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rec.Store.Hash() != live[i].hash {
			t.Errorf("%s: recovered state hash diverged from the live store", id)
		}
		if rec.Ledger.Height() != live[i].height || rec.Ledger.LastHash() != live[i].tip {
			t.Errorf("%s: recovered ledger diverged (height %d vs %d)",
				id, rec.Ledger.Height(), live[i].height)
		}
		if rec.SnapshotHeight == 0 && live[i].height >= 2 {
			t.Errorf("%s: recovery replayed from genesis, not from a snapshot", id)
		}
		if err := mgr.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// (b) A rebuilt network resumes from the durable state.
	net2 := transport.NewInMemNetwork(transport.InMemConfig{})
	defer net2.Close()
	nw2, err := New(durableConfig(net2, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer nw2.Stop()
	nw2.Start()
	for i := range nw2.Executors {
		if nw2.Stores[i].Hash() != live[i].hash || nw2.Ledgers[i].Height() != live[i].height {
			t.Errorf("executor %d: rebuilt network did not resume from durable state", i)
		}
		if nw2.Recovered[i] == nil || nw2.Recovered[i].Replayed >= int(live[i].height) {
			t.Errorf("executor %d: rebuilt network replayed the full chain (%+v)",
				i, nw2.Recovered[i])
		}
	}
}

// TestInMemoryNetworkHasNoManagers pins the compatibility contract: an
// empty DataDir must leave the durability subsystem entirely out of the
// deployment.
func TestInMemoryNetworkHasNoManagers(t *testing.T) {
	nw, _ := testNetwork(t, nil)
	for i, m := range nw.Persists {
		if m != nil {
			t.Fatalf("executor %d has a durability manager without DataDir", i)
		}
	}
	if len(nw.Persists) != len(nw.Executors) || len(nw.Recovered) != len(nw.Executors) {
		t.Fatalf("Persists/Recovered not indexed like Executors")
	}
}
