package types

// BlockHeader carries the chaining metadata of a block. Headers are hashed
// to link blocks: each header embeds the hash of the previous block
// (h = H(B') in the paper's NEWBLOCK message).
type BlockHeader struct {
	// Number is the block's sequence number n; the genesis block is 0.
	Number uint64
	// PrevHash is the hash of the previous block's header.
	PrevHash Hash
	// TxRoot is the Merkle root over the digests of the block's
	// transactions, committing the header to the block body.
	TxRoot Hash
	// Count is the number of transactions in the block.
	Count int
}

// Block is an ordered batch of transactions produced by the ordering
// phase. Orderers cut blocks on three deterministic conditions: maximum
// transaction count, maximum byte size, or a timeout signalled through
// consensus (Section IV-B).
type Block struct {
	// Header is the chaining metadata.
	Header BlockHeader
	// Txns are the block's transactions in their agreed total order. The
	// position of a transaction in this slice is its timestamp ts(T)
	// relative to the other transactions of the block.
	Txns []*Transaction
}

// Hash returns the block's identity: a digest of its header.
func (b *Block) Hash() Hash {
	e := newEncoder()
	e.u64(b.Header.Number)
	e.bytes(b.Header.PrevHash[:])
	e.bytes(b.Header.TxRoot[:])
	e.u64(uint64(b.Header.Count))
	return e.sum()
}

// NewBlock assembles a block over txns, linking it to the previous block
// hash and committing the header to the transaction list via a Merkle
// root.
func NewBlock(number uint64, prev Hash, txns []*Transaction) *Block {
	b := &Block{
		Header: BlockHeader{
			Number:   number,
			PrevHash: prev,
			Count:    len(txns),
		},
		Txns: txns,
	}
	b.Header.TxRoot = TxMerkleRoot(txns)
	return b
}

// TxMerkleRoot computes the Merkle root over the transactions' digests.
// An empty transaction list yields the zero hash. Odd levels duplicate the
// trailing node, the conventional Bitcoin-style padding.
func TxMerkleRoot(txns []*Transaction) Hash {
	if len(txns) == 0 {
		return ZeroHash
	}
	level := make([]Hash, len(txns))
	for i, tx := range txns {
		level[i] = tx.Digest()
	}
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			j := i + 1
			if j == len(level) {
				j = i // duplicate the odd trailing node
			}
			e := newEncoder()
			e.bytes(level[i][:])
			e.bytes(level[j][:])
			next = append(next, e.sum())
		}
		level = next
	}
	return level[0]
}

// Apps returns the set of application IDs with at least one transaction in
// the block (the A component of the NEWBLOCK message), in first-seen
// order.
func (b *Block) Apps() []AppID {
	seen := make(map[AppID]bool, 4)
	apps := make([]AppID, 0, 4)
	for _, tx := range b.Txns {
		if !seen[tx.App] {
			seen[tx.App] = true
			apps = append(apps, tx.App)
		}
	}
	return apps
}

// VerifyTxRoot recomputes the Merkle root of the block body and reports
// whether it matches the header commitment.
func (b *Block) VerifyTxRoot() bool {
	return TxMerkleRoot(b.Txns) == b.Header.TxRoot
}
