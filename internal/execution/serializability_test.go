package execution

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"parblockchain/internal/contract"
	"parblockchain/internal/state"
	"parblockchain/internal/types"
)

// This file property-tests the core claim of the OXII paradigm: any
// schedule the dependency-graph scheduler admits is equivalent to the
// sequential execution of the block ("as long as the transactions are
// executed in an order consistent with the dependency graph, the results
// are valid", Section III-A).
//
// Random blocks of read-modify-write transactions over a small key space
// execute on the real executor (parallel workers, real scheduler); the
// final state must equal a simple sequential interpreter's.

// seqExecute is the reference interpreter: strictly sequential block
// execution.
func seqExecute(genesis []types.KV, txns []*types.Transaction) map[types.Key][]byte {
	store := state.NewKVStore()
	store.Apply(genesis)
	registry := contract.NewRegistry()
	registry.Install("app1", contract.NewKV())
	overlay := state.NewBlockOverlay(store)
	for i, tx := range txns {
		writes, err := registry.Execute(tx.App, overlay, tx.Op)
		if err == nil {
			overlay.Record(i, writes)
		}
	}
	store.Apply(overlay.Final())
	return store.Snapshot()
}

// randomBlock builds transactions that append their index to random keys,
// so any reordering of conflicting transactions changes some final value.
func randomBlock(rng *rand.Rand, n, keys int) []*types.Transaction {
	txns := make([]*types.Transaction, n)
	for i := range txns {
		key := fmt.Sprintf("k%d", rng.Intn(keys))
		tx := &types.Transaction{
			App:      "app1",
			Client:   "c1",
			ClientTS: uint64(i + 1),
			Op:       contract.AppendOp(key, fmt.Sprintf("|%d", i)),
		}
		tx.ID = types.TxID(fmt.Sprintf("t%d", i))
		txns[i] = tx
	}
	return txns
}

// TestPropertySchedulerSerializable runs many random contended blocks
// through the real executor and compares against the sequential
// reference.
func TestPropertySchedulerSerializable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		n := 10 + rng.Intn(40)
		keys := 1 + rng.Intn(6) // few keys: heavy contention
		txns := randomBlock(rng, n, keys)
		want := seqExecute(nil, txns)

		h := newHarness(t, func(cfg *Config) {
			cfg.Workers = 1 + rng.Intn(7) // vary parallelism
		})
		h.sendBlock(txns)
		h.awaitCommit(10 * time.Second)
		got := h.store.Snapshot()

		if len(got) != len(want) {
			t.Fatalf("trial %d: key count %d != %d", trial, len(got), len(want))
		}
		for k, v := range want {
			if string(got[k]) != string(v) {
				t.Fatalf("trial %d (n=%d keys=%d): key %s = %q, want %q",
					trial, n, keys, k, got[k], v)
			}
		}
		// The harness registers cleanup per trial; stop it eagerly to
		// bound goroutine growth across trials.
		h.exec.Stop()
		h.net.Close()
	}
}

// TestPropertyMultiBlockSerializable extends the property across several
// chained blocks, where later blocks read earlier blocks' committed
// state.
func TestPropertyMultiBlockSerializable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		blocks := make([][]*types.Transaction, 3)
		ts := 0
		var all []*types.Transaction
		for b := range blocks {
			n := 5 + rng.Intn(15)
			blocks[b] = make([]*types.Transaction, n)
			for i := range blocks[b] {
				ts++
				key := fmt.Sprintf("k%d", rng.Intn(4))
				tx := &types.Transaction{
					App:      "app1",
					Client:   "c1",
					ClientTS: uint64(ts),
					Op:       contract.AppendOp(key, fmt.Sprintf("|%d", ts)),
				}
				tx.ID = types.TxID(fmt.Sprintf("t%d", ts))
				blocks[b][i] = tx
				all = append(all, tx)
			}
		}
		want := seqExecute(nil, all)

		h := newHarness(t, nil)
		for _, block := range blocks {
			h.sendBlock(block)
		}
		for range blocks {
			h.awaitCommit(10 * time.Second)
		}
		got := h.store.Snapshot()
		for k, v := range want {
			if string(got[k]) != string(v) {
				t.Fatalf("trial %d: key %s = %q, want %q", trial, k, got[k], v)
			}
		}
		h.exec.Stop()
		h.net.Close()
	}
}
