package kafkaorder

import (
	"bytes"
	"reflect"
	"testing"
)

// TestWireRoundTrips pins every kafkaorder wire codec: decode(encode(m))
// == m for each protocol message.
func TestWireRoundTrips(t *testing.T) {
	cases := []struct {
		name   string
		msg    any
		enc    []byte
		decode func([]byte) (any, error)
	}{
		{"Forward", Forward{Payload: []byte("p")}, Forward{Payload: []byte("p")}.Marshal(),
			func(b []byte) (any, error) { return UnmarshalForward(b) }},
		{"Append", Append{Seq: 3, Batch: [][]byte{[]byte("a"), []byte("bb")}},
			Append{Seq: 3, Batch: [][]byte{[]byte("a"), []byte("bb")}}.Marshal(),
			func(b []byte) (any, error) { return UnmarshalAppend(b) }},
		{"EmptyAppend", Append{Seq: 4}, Append{Seq: 4}.Marshal(),
			func(b []byte) (any, error) { return UnmarshalAppend(b) }},
		{"Ack", Ack{Seq: 3}, Ack{Seq: 3}.Marshal(),
			func(b []byte) (any, error) { return UnmarshalAck(b) }},
		{"CommitAnn", CommitAnn{Seq: 3}, CommitAnn{Seq: 3}.Marshal(),
			func(b []byte) (any, error) { return UnmarshalCommitAnn(b) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := c.decode(c.enc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, c.msg) {
				t.Fatalf("round trip changed the message: %#v != %#v", got, c.msg)
			}
			if _, err := c.decode(append(append([]byte{}, c.enc...), 0x00)); err == nil {
				t.Fatal("trailing byte accepted")
			}
		})
	}
}

// TestWireMalformedRejected: truncated and hostile inputs error instead
// of panicking or over-allocating.
func TestWireMalformedRejected(t *testing.T) {
	good := Append{Seq: 1, Batch: [][]byte{[]byte("x")}}.Marshal()
	for cut := 0; cut < len(good); cut++ {
		if _, err := UnmarshalAppend(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A batch count promising more payloads than the input could hold
	// must fail before allocation.
	hostile := append([]byte{}, good[:8]...) // seq
	hostile = append(hostile, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)
	if _, err := UnmarshalAppend(hostile); err == nil {
		t.Fatal("hostile batch count accepted")
	}
}

func FuzzUnmarshalAppend(f *testing.F) {
	f.Add(Append{Seq: 3, Batch: [][]byte{[]byte("a"), []byte("bb")}}.Marshal())
	f.Add(Append{}.Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalAppend(data)
		if err != nil {
			return
		}
		enc := m.Marshal()
		m2, err := UnmarshalAppend(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if !bytes.Equal(enc, m2.Marshal()) {
			t.Fatal("Append encoding is not a fixed point")
		}
	})
}
