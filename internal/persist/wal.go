package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"parblockchain/internal/types"
)

// The write-ahead log is a sequence of segment files under <dir>/wal,
// each named by the height of its first record:
//
//	wal-<height, 16 hex digits>.seg
//
// A segment starts with an 8-byte magic and its start height, followed
// by length-prefixed, CRC-32C-checksummed record frames:
//
//	magic (8)  | "PBWALS01"
//	u64        | start height
//	frames     | [u32 body length][u32 CRC-32C(body)][body]
//
// where each body is one BlockRecord encoding. Frames are written in
// strictly increasing height order, so record N of a segment starting
// at height H holds block H+N. A torn frame at the very tail of the
// newest segment is the expected shape of a crash and is truncated on
// recovery; a bad frame anywhere else is disk corruption and fails
// recovery loudly.

var walMagic = [8]byte{'P', 'B', 'W', 'A', 'L', 'S', '0', '1'}

const (
	walHeaderLen = len(walMagic) + 8
	walFrameLen  = 8 // u32 length + u32 crc
	// maxWALRecordBytes bounds a single record frame on read: far above
	// any real block (blocks are cut at ~2 MB), far below what a corrupt
	// length prefix could otherwise make the reader allocate.
	maxWALRecordBytes = 256 << 20
)

// segmentFileName formats a segment file name for its start height under
// an arbitrary prefix — "wal" for the executor WAL, the RecordLog
// prefixes ("olog", "raft", "kafka") for the ordering-side logs.
func segmentFileName(prefix string, start uint64) string {
	return fmt.Sprintf("%s-%016x.seg", prefix, start)
}

// segmentName formats a WAL segment file name for its start height.
func segmentName(start uint64) string {
	return segmentFileName("wal", start)
}

// parseHeightName extracts the 16-hex-digit height from a file named
// "<prefix><height><suffix>" — the naming scheme WAL segments and
// snapshots share.
func parseHeightName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(hexpart) != 16 {
		return 0, false
	}
	h, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return h, true
}

// parseSegmentName extracts the start height from a WAL segment name.
func parseSegmentName(name string) (uint64, bool) {
	return parseHeightName(name, "wal-", ".seg")
}

// listSegmentFiles returns the start heights of every segment with the
// given prefix in dir, ascending.
func listSegmentFiles(dir, prefix string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	starts := make([]uint64, 0, len(entries))
	for _, e := range entries {
		if start, ok := parseHeightName(e.Name(), prefix+"-", ".seg"); ok {
			starts = append(starts, start)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// listSegments returns the start heights of every segment in the wal
// directory, ascending.
func listSegments(walDir string) ([]uint64, error) {
	return listSegmentFiles(walDir, "wal")
}

// createSegmentFile creates (truncating any leftover) a prefix-named
// segment file for records starting at the given height and durably
// records its directory entry.
func createSegmentFile(dir, prefix string, start uint64) (*os.File, error) {
	path := filepath.Join(dir, segmentFileName(prefix, start))
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	var hdr [walHeaderLen]byte
	copy(hdr[:], walMagic[:])
	binary.BigEndian.PutUint64(hdr[len(walMagic):], start)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// createSegment creates a WAL segment file.
func createSegment(walDir string, start uint64) (*os.File, error) {
	return createSegmentFile(walDir, "wal", start)
}

// appendFrame encodes rec as one frame — the 8-byte header is reserved
// up front in a pooled writer and patched once the body is in place —
// and appends it to the segment: a single file write, no intermediate
// copy of the record.
func appendFrame(f *os.File, rec *BlockRecord) (int, error) {
	w := types.AcquireWriter()
	defer types.ReleaseWriter(w)
	w.U64(0) // header placeholder: [u32 body len][u32 crc], patched below
	rec.marshalTo(w)
	body := w.Bytes()[walFrameLen:]
	w.PatchU64(0, uint64(len(body))<<32|uint64(crc32.Checksum(body, castagnoli)))
	if _, err := f.Write(w.Bytes()); err != nil {
		return 0, err
	}
	return w.Len(), nil
}

// appendRawFrame frames an already-encoded record body and appends it to
// the segment — the RecordLog flavor of appendFrame, identical on disk.
func appendRawFrame(f *os.File, body []byte) (int, error) {
	w := types.AcquireWriter()
	defer types.ReleaseWriter(w)
	w.U64(0) // header placeholder, patched below
	w.Raw(body)
	w.PatchU64(0, uint64(len(body))<<32|uint64(crc32.Checksum(body, castagnoli)))
	if _, err := f.Write(w.Bytes()); err != nil {
		return 0, err
	}
	return w.Len(), nil
}

// errTornTail reports a frame that ends mid-write: a short header, a
// short body, or a checksum mismatch at the end of a segment.
var errTornTail = errors.New("persist: torn WAL tail")

// replaySegment streams a WAL segment's records through fn in order.
func replaySegment(path string, fn func(body []byte) error) (int64, error) {
	return replaySegmentFile(path, "wal", fn)
}

// replaySegmentFile streams a segment's records through fn in order,
// stopping at the first torn frame. It returns the byte offset of the
// valid prefix (for truncation) and errTornTail if the tail was torn;
// any other error aborts the replay.
func replaySegmentFile(path, prefix string, fn func(body []byte) error) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [walHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, errTornTail // header never completed: treat as empty
	}
	if [8]byte(hdr[:8]) != walMagic {
		return 0, fmt.Errorf("persist: segment %s has bad magic", path)
	}
	name := filepath.Base(path)
	if start, ok := parseHeightName(name, prefix+"-", ".seg"); !ok ||
		start != binary.BigEndian.Uint64(hdr[len(walMagic):]) {
		return 0, fmt.Errorf("persist: segment %s header height does not match its name", path)
	}
	offset := int64(walHeaderLen)
	var fh [walFrameLen]byte
	for {
		if _, err := io.ReadFull(f, fh[:]); err != nil {
			if err == io.EOF {
				return offset, nil // clean end
			}
			return offset, errTornTail
		}
		n := binary.BigEndian.Uint32(fh[0:])
		want := binary.BigEndian.Uint32(fh[4:])
		if n == 0 || n > maxWALRecordBytes {
			return offset, errTornTail
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(f, body); err != nil {
			return offset, errTornTail
		}
		if crc32.Checksum(body, castagnoli) != want {
			return offset, errTornTail
		}
		if err := fn(body); err != nil {
			return offset, err
		}
		offset += int64(walFrameLen) + int64(n)
	}
}
