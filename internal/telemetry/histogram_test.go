package telemetry

import (
	"math"
	"sort"
	"sync"
	"testing"
)

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's bounds must tile the non-negative int64 range.
	for i := 1; i < NumBuckets; i++ {
		if bucketLower(i) != BucketUpper(i-1)+1 {
			t.Errorf("bucket %d lower %d does not follow bucket %d upper %d",
				i, bucketLower(i), i-1, BucketUpper(i-1))
		}
		if bucketOf(bucketLower(i)) != i || bucketOf(BucketUpper(i)) != i {
			t.Errorf("bucket %d bounds [%d, %d] do not map back to bucket %d",
				i, bucketLower(i), BucketUpper(i), i)
		}
	}
}

func TestHistogramExactAggregates(t *testing.T) {
	var h Histogram
	vals := []int64{0, 1, 3, 7, 100, 1e6, 5, 5, 5, -3}
	var sum, max int64
	for _, v := range vals {
		h.Observe(v)
		cv := v
		if cv < 0 {
			cv = 0
		}
		sum += cv
		if cv > max {
			max = cv
		}
	}
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	if s.Sum != sum {
		t.Fatalf("sum = %d, want %d", s.Sum, sum)
	}
	if s.Max != max {
		t.Fatalf("max = %d, want %d", s.Max, max)
	}
}

// Quantile estimates must land within the bucket that holds the true
// quantile: relative error bounded by a factor of two, and never above
// the observed max.
func TestHistogramQuantileWithinBucket(t *testing.T) {
	var h Histogram
	var vals []int64
	v := int64(1)
	for i := 0; i < 1000; i++ {
		h.Observe(v)
		vals = append(vals, v)
		v = v*7%100003 + 1 // deterministic spread over ~[1, 100003]
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.9, 0.95, 0.99, 1} {
		idx := int(math.Ceil(q*float64(len(vals)))) - 1
		if idx < 0 {
			idx = 0
		}
		exact := vals[idx]
		got := s.Quantile(q)
		lo, hi := bucketLower(bucketOf(exact)), BucketUpper(bucketOf(exact))
		if got < lo || got > hi {
			t.Errorf("Quantile(%v) = %d outside exact value %d's bucket [%d, %d]", q, got, exact, lo, hi)
		}
		if got > s.Max {
			t.Errorf("Quantile(%v) = %d exceeds max %d", q, got, s.Max)
		}
	}
	if got := s.Quantile(1); got != s.Max {
		t.Errorf("Quantile(1) = %d, want exact max %d", got, s.Max)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	for i := int64(0); i < 500; i++ {
		a.Observe(i * 3)
		both.Observe(i * 3)
	}
	for i := int64(0); i < 300; i++ {
		b.Observe(i * 17)
		both.Observe(i * 17)
	}
	a.Merge(b.Snapshot())
	got, want := a.Snapshot(), both.Snapshot()
	if got != want {
		t.Fatalf("merged snapshot differs:\n got %+v\nwant %+v", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < per; i++ {
				h.Observe(seed*per + i)
			}
		}(int64(w))
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
}
