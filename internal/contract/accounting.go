package contract

import (
	"fmt"
	"strconv"

	"parblockchain/internal/state"
	"parblockchain/internal/types"
)

// Accounting is the paper's evaluation application: every client owns
// accounts, each a balance, and transactions transfer assets between
// accounts. "A simple transaction T initiated by client c might transfer x
// units from account 1001 to account 1002. The transaction is valid if c
// is the owner of account 1001 and the account balance is at least x."
// Ownership is enforced by the orderers' access control in this system;
// the contract enforces balance sufficiency.
//
// Balances are stored as decimal strings so ledgers and state dumps are
// human-readable.
//
// Methods:
//
//	"open"     params: account, initialBalance   reads: -        writes: account
//	"deposit"  params: account, amount           reads: account  writes: account
//	"transfer" params: from, to, amount          reads: from,to  writes: from,to
type Accounting struct{}

// NewAccounting returns the accounting contract.
func NewAccounting() Accounting { return Accounting{} }

// Execute dispatches the accounting methods.
func (Accounting) Execute(view state.Reader, op types.Operation) ([]types.KV, error) {
	switch op.Method {
	case "open":
		return accountingOpen(op.Params)
	case "deposit":
		return accountingDeposit(view, op.Params)
	case "transfer":
		return accountingTransfer(view, op.Params)
	default:
		return nil, fmt.Errorf("%w: unknown accounting method %q", ErrAbort, op.Method)
	}
}

var _ Contract = Accounting{}

// Balance decodes a stored account balance.
func Balance(raw []byte) (int64, error) {
	v, err := strconv.ParseInt(string(raw), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("contract: corrupt balance %q: %w", raw, err)
	}
	return v, nil
}

// EncodeBalance encodes an account balance for storage.
func EncodeBalance(v int64) []byte {
	return strconv.AppendInt(nil, v, 10)
}

func accountingOpen(params []string) ([]types.KV, error) {
	if len(params) != 2 {
		return nil, fmt.Errorf("%w: open wants [account, balance], got %d params", ErrAbort, len(params))
	}
	initial, err := strconv.ParseInt(params[1], 10, 64)
	if err != nil || initial < 0 {
		return nil, fmt.Errorf("%w: open: bad initial balance %q", ErrAbort, params[1])
	}
	return []types.KV{{Key: params[0], Val: EncodeBalance(initial)}}, nil
}

func accountingDeposit(view state.Reader, params []string) ([]types.KV, error) {
	if len(params) != 2 {
		return nil, fmt.Errorf("%w: deposit wants [account, amount], got %d params", ErrAbort, len(params))
	}
	amount, err := strconv.ParseInt(params[1], 10, 64)
	if err != nil || amount <= 0 {
		return nil, fmt.Errorf("%w: deposit: bad amount %q", ErrAbort, params[1])
	}
	balance := int64(0)
	if raw, ok := view.Get(params[0]); ok {
		if balance, err = Balance(raw); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrAbort, err)
		}
	}
	return []types.KV{{Key: params[0], Val: EncodeBalance(balance + amount)}}, nil
}

func accountingTransfer(view state.Reader, params []string) ([]types.KV, error) {
	if len(params) != 3 {
		return nil, fmt.Errorf("%w: transfer wants [from, to, amount], got %d params", ErrAbort, len(params))
	}
	from, to := params[0], params[1]
	amount, err := strconv.ParseInt(params[2], 10, 64)
	if err != nil || amount <= 0 {
		return nil, fmt.Errorf("%w: transfer: bad amount %q", ErrAbort, params[2])
	}
	if from == to {
		return nil, fmt.Errorf("%w: transfer: from == to (%s)", ErrAbort, from)
	}
	rawFrom, ok := view.Get(from)
	if !ok {
		return nil, fmt.Errorf("%w: transfer: unknown account %s", ErrAbort, from)
	}
	fromBal, err := Balance(rawFrom)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAbort, err)
	}
	if fromBal < amount {
		return nil, fmt.Errorf("%w: transfer: insufficient funds in %s (%d < %d)",
			ErrAbort, from, fromBal, amount)
	}
	toBal := int64(0)
	if rawTo, ok := view.Get(to); ok {
		if toBal, err = Balance(rawTo); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrAbort, err)
		}
	}
	return []types.KV{
		{Key: from, Val: EncodeBalance(fromBal - amount)},
		{Key: to, Val: EncodeBalance(toBal + amount)},
	}, nil
}

// TransferOp builds the operation for a transfer, declaring the read and
// write sets the orderers use for dependency-graph generation. Both
// accounts appear in both sets: the source is read for the balance check
// and written with the debit; the destination is read for its balance and
// written with the credit.
func TransferOp(from, to types.Key, amount int64) types.Operation {
	return types.Operation{
		Method: "transfer",
		Params: []string{from, to, strconv.FormatInt(amount, 10)},
		Reads:  types.NormalizeKeys([]types.Key{from, to}),
		Writes: types.NormalizeKeys([]types.Key{from, to}),
	}
}

// OpenOp builds the operation that opens an account with an initial
// balance.
func OpenOp(account types.Key, initial int64) types.Operation {
	return types.Operation{
		Method: "open",
		Params: []string{account, strconv.FormatInt(initial, 10)},
		Writes: []types.Key{account},
	}
}

// DepositOp builds the operation that credits an account.
func DepositOp(account types.Key, amount int64) types.Operation {
	return types.Operation{
		Method: "deposit",
		Params: []string{account, strconv.FormatInt(amount, 10)},
		Reads:  []types.Key{account},
		Writes: []types.Key{account},
	}
}
