// Package cryptoutil provides the signing infrastructure ParBlockchain
// nodes use to authenticate REQUEST, NEWBLOCK, and COMMIT messages:
// ed25519 keypairs, a keyring mapping node identities to public keys, and
// a no-op signer for benchmarks that isolate protocol cost from
// cryptography cost.
package cryptoutil

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by signature verification.
var (
	// ErrUnknownSigner is returned when the keyring holds no key for the
	// claimed identity.
	ErrUnknownSigner = errors.New("cryptoutil: unknown signer")
	// ErrBadSignature is returned when the signature does not verify.
	ErrBadSignature = errors.New("cryptoutil: bad signature")
)

// Signer produces signatures on behalf of one node identity.
type Signer interface {
	// ID returns the node identity the signatures speak for.
	ID() string
	// Sign signs the given digest.
	Sign(digest []byte) []byte
}

// Verifier checks signatures against registered identities.
type Verifier interface {
	// Verify checks that sig is a valid signature by node id over digest.
	Verify(id string, digest, sig []byte) error
}

// KeyPair is an ed25519 signing identity for one node.
type KeyPair struct {
	id   string
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// GenerateKeyPair creates a fresh ed25519 keypair bound to the node id.
func GenerateKeyPair(id string) (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: generating key for %s: %w", id, err)
	}
	return &KeyPair{id: id, pub: pub, priv: priv}, nil
}

// MustGenerateKeyPair is GenerateKeyPair for setup code where entropy
// exhaustion is not a recoverable condition.
func MustGenerateKeyPair(id string) *KeyPair {
	kp, err := GenerateKeyPair(id)
	if err != nil {
		panic(err)
	}
	return kp
}

// DeterministicKeyPair derives a keypair from the node identity alone, so
// every process in a demo cluster can reconstruct every node's public key
// without key distribution. FOR TESTS AND DEMOS ONLY: anyone who knows a
// node's ID can forge its signatures.
func DeterministicKeyPair(id string) *KeyPair {
	seed := sha256.Sum256([]byte("parblockchain-demo-key:" + id))
	priv := ed25519.NewKeyFromSeed(seed[:])
	return &KeyPair{
		id:   id,
		pub:  priv.Public().(ed25519.PublicKey),
		priv: priv,
	}
}

// ID returns the node identity.
func (k *KeyPair) ID() string { return k.id }

// Public returns the public key for keyring registration.
func (k *KeyPair) Public() ed25519.PublicKey { return k.pub }

// Sign signs the digest with the node's private key.
func (k *KeyPair) Sign(digest []byte) []byte {
	return ed25519.Sign(k.priv, digest)
}

var _ Signer = (*KeyPair)(nil)

// KeyRing maps node identities to public keys and verifies signatures.
// The zero value is ready to use. KeyRing is safe for concurrent use.
type KeyRing struct {
	mu   sync.RWMutex
	keys map[string]ed25519.PublicKey
}

// NewKeyRing returns an empty keyring.
func NewKeyRing() *KeyRing {
	return &KeyRing{keys: make(map[string]ed25519.PublicKey)}
}

// Add registers (or replaces) the public key for a node identity.
func (r *KeyRing) Add(id string, pub ed25519.PublicKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.keys == nil {
		r.keys = make(map[string]ed25519.PublicKey)
	}
	r.keys[id] = append(ed25519.PublicKey(nil), pub...)
}

// Verify checks that sig is node id's signature over digest.
func (r *KeyRing) Verify(id string, digest, sig []byte) error {
	r.mu.RLock()
	pub, ok := r.keys[id]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSigner, id)
	}
	if !ed25519.Verify(pub, digest, sig) {
		return fmt.Errorf("%w: signer %s", ErrBadSignature, id)
	}
	return nil
}

var _ Verifier = (*KeyRing)(nil)

// NoopSigner implements Signer without cryptography. Benchmarks use it to
// measure protocol cost with signing disabled; the paired NoopVerifier
// accepts every signature.
type NoopSigner struct {
	// NodeID is the identity the signer claims.
	NodeID string
}

// ID returns the claimed identity.
func (s NoopSigner) ID() string { return s.NodeID }

// Sign returns a fixed one-byte placeholder signature.
func (s NoopSigner) Sign([]byte) []byte { return []byte{0xAA} }

var _ Signer = NoopSigner{}

// NoopVerifier accepts every signature. It pairs with NoopSigner in
// crypto-disabled benchmark configurations.
type NoopVerifier struct{}

// Verify always succeeds.
func (NoopVerifier) Verify(string, []byte, []byte) error { return nil }

var _ Verifier = NoopVerifier{}
