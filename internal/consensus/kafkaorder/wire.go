package kafkaorder

import (
	"parblockchain/internal/types"
)

// Hand-rolled binary codecs for the kafkaorder protocol messages, so TCP
// deployments frame them directly instead of riding the transport's gob
// escape hatch. Same contract as the internal/types codecs: malformed
// input errors instead of panicking, and attacker-chosen counts are
// bounded by the input size before allocation.

// minBatchEntryLen bounds batch-count pre-allocation on decode: one
// length-prefixed payload per entry.
const minBatchEntryLen = 8

// Marshal encodes a Forward frame.
func (m Forward) Marshal() []byte {
	w := types.AcquireWriter()
	defer types.ReleaseWriter(w)
	w.Blob(m.Payload)
	return w.CloneBytes()
}

// UnmarshalForward decodes a Forward frame.
func UnmarshalForward(b []byte) (Forward, error) {
	r := types.NewByteReader(b)
	m := Forward{Payload: r.Blob()}
	return m, types.FinishDecode(r, "kafka FORWARD")
}

// Marshal encodes an Append frame.
func (m Append) Marshal() []byte {
	w := types.AcquireWriter()
	defer types.ReleaseWriter(w)
	w.U64(m.Seq)
	w.U64(uint64(len(m.Batch)))
	for _, p := range m.Batch {
		w.Blob(p)
	}
	return w.CloneBytes()
}

// UnmarshalAppend decodes an Append frame.
func UnmarshalAppend(b []byte) (Append, error) {
	r := types.NewByteReader(b)
	m := Append{Seq: r.U64()}
	n := r.U64()
	if r.Err() == nil && n > uint64(r.Remaining())/minBatchEntryLen {
		r.Fail()
	}
	if n > 0 && r.Err() == nil {
		m.Batch = make([][]byte, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			m.Batch = append(m.Batch, r.Blob())
		}
	}
	return m, types.FinishDecode(r, "kafka APPEND")
}

// Marshal encodes an Ack frame.
func (m Ack) Marshal() []byte {
	w := types.AcquireWriter()
	defer types.ReleaseWriter(w)
	w.U64(m.Seq)
	return w.CloneBytes()
}

// UnmarshalAck decodes an Ack frame.
func UnmarshalAck(b []byte) (Ack, error) {
	r := types.NewByteReader(b)
	m := Ack{Seq: r.U64()}
	return m, types.FinishDecode(r, "kafka ACK")
}

// Marshal encodes a CommitAnn frame.
func (m CommitAnn) Marshal() []byte {
	w := types.AcquireWriter()
	defer types.ReleaseWriter(w)
	w.U64(m.Seq)
	return w.CloneBytes()
}

// UnmarshalCommitAnn decodes a CommitAnn frame.
func UnmarshalCommitAnn(b []byte) (CommitAnn, error) {
	r := types.NewByteReader(b)
	m := CommitAnn{Seq: r.U64()}
	return m, types.FinishDecode(r, "kafka COMMITANN")
}

// Marshal encodes a Fetch frame.
func (m Fetch) Marshal() []byte {
	w := types.AcquireWriter()
	defer types.ReleaseWriter(w)
	w.U64(m.Have)
	return w.CloneBytes()
}

// UnmarshalFetch decodes a Fetch frame.
func UnmarshalFetch(b []byte) (Fetch, error) {
	r := types.NewByteReader(b)
	m := Fetch{Have: r.U64()}
	return m, types.FinishDecode(r, "kafka FETCH")
}
