package pbft_test

import (
	"fmt"
	"testing"
	"time"

	"parblockchain/internal/consensus"
	"parblockchain/internal/consensus/pbft"
	"parblockchain/internal/transport"
	"parblockchain/internal/types"
)

// cluster wires n PBFT nodes over an in-memory network and pumps their
// endpoints into Step.
type cluster struct {
	net   *transport.InMemNetwork
	nodes []*pbft.Node
	ids   []types.NodeID
}

func newCluster(t *testing.T, n int, timeout time.Duration) *cluster {
	t.Helper()
	c := &cluster{net: transport.NewInMemNetwork(transport.InMemConfig{
		Latency: transport.ConstantLatency(200 * time.Microsecond),
	})}
	for i := 0; i < n; i++ {
		c.ids = append(c.ids, types.NodeID(fmt.Sprintf("n%d", i+1)))
	}
	for _, id := range c.ids {
		ep, err := c.net.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		node := pbft.New(pbft.Config{
			ID:                id,
			Members:           c.ids,
			Sender:            consensus.SenderFunc(ep.Send),
			Batch:             consensus.BatchConfig{MaxMsgs: 8, MaxDelayMillis: 2},
			ViewChangeTimeout: timeout,
		})
		c.nodes = append(c.nodes, node)
		go func(ep transport.Endpoint, node *pbft.Node) {
			for msg := range ep.Recv() {
				node.Step(msg.From, msg.Payload)
			}
		}(ep, node)
		node.Start()
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			n.Stop()
		}
		c.net.Close()
	})
	return c
}

// collect reads k entries from a node's committed stream.
func collect(t *testing.T, n *pbft.Node, k int, timeout time.Duration) []consensus.Entry {
	t.Helper()
	out := make([]consensus.Entry, 0, k)
	deadline := time.After(timeout)
	for len(out) < k {
		select {
		case e, ok := <-n.Committed():
			if !ok {
				t.Fatalf("stream closed after %d entries", len(out))
			}
			out = append(out, e)
		case <-deadline:
			t.Fatalf("timeout: got %d of %d entries", len(out), k)
		}
	}
	return out
}

func TestNormalCaseTotalOrder(t *testing.T) {
	c := newCluster(t, 4, time.Second)
	const k = 40
	for i := 0; i < k; i++ {
		// Submit through varying members; non-primaries forward.
		_ = c.nodes[i%4].Submit([]byte(fmt.Sprintf("p%03d", i)))
	}
	streams := make([][]consensus.Entry, 4)
	for i, n := range c.nodes {
		streams[i] = collect(t, n, k, 10*time.Second)
	}
	for i := 1; i < 4; i++ {
		for j := range streams[0] {
			if streams[0][j].Seq != streams[i][j].Seq ||
				string(streams[0][j].Payload) != string(streams[i][j].Payload) {
				t.Fatalf("node %d diverges at %d", i, j)
			}
		}
	}
	// Seq must be gap-free from 1.
	for j, e := range streams[0] {
		if e.Seq != uint64(j+1) {
			t.Fatalf("entry %d has seq %d", j, e.Seq)
		}
	}
}

func TestQuorumSize(t *testing.T) {
	cases := map[int]int{4: 3, 7: 5, 10: 7}
	for n, want := range cases {
		ids := make([]types.NodeID, n)
		for i := range ids {
			ids[i] = types.NodeID(fmt.Sprintf("n%d", i))
		}
		node := pbft.New(pbft.Config{ID: ids[0], Members: ids, Sender: consensus.SenderFunc(
			func(types.NodeID, any) error { return nil })})
		if got := node.Quorum(); got != want {
			t.Errorf("n=%d: quorum = %d, want %d", n, got, want)
		}
	}
}

func TestBatchDigestDistinguishesBatches(t *testing.T) {
	a := pbft.BatchDigest([][]byte{[]byte("x"), []byte("y")})
	b := pbft.BatchDigest([][]byte{[]byte("xy")})
	if a == b {
		t.Fatal("batch boundaries must affect the digest")
	}
	if pbft.BatchDigest(nil) != pbft.BatchDigest([][]byte{}) {
		t.Fatal("nil and empty batches should hash equally")
	}
}

// TestViewChangeOnPrimaryFailure isolates the view-0 primary and checks
// that the remaining replicas elect view 1 and keep committing.
func TestViewChangeOnPrimaryFailure(t *testing.T) {
	c := newCluster(t, 4, 250*time.Millisecond)
	// Let the cluster commit something under the original primary first.
	_ = c.nodes[1].Submit([]byte("before"))
	for _, n := range c.nodes {
		collect(t, n, 1, 5*time.Second)
	}
	// Kill the primary (n1 = primary of view 0).
	c.net.Isolate(c.ids[0], true)
	// Submit through a replica; the forward to the dead primary times
	// out and triggers a view change.
	_ = c.nodes[1].Submit([]byte("after"))
	for i := 1; i < 4; i++ {
		entries := collect(t, c.nodes[i], 1, 10*time.Second)
		if string(entries[0].Payload) != "after" {
			t.Fatalf("node %d delivered %q", i, entries[0].Payload)
		}
	}
}

// TestProgressAfterRepeatedSubmissionsUnderViewChange verifies ordering
// continues after fail-over with more traffic.
func TestProgressAfterViewChange(t *testing.T) {
	c := newCluster(t, 4, 250*time.Millisecond)
	c.net.Isolate(c.ids[0], true)
	const k = 10
	for i := 0; i < k; i++ {
		_ = c.nodes[1+i%3].Submit([]byte(fmt.Sprintf("m%d", i)))
	}
	// All live nodes deliver all k payloads in the same order.
	var ref []consensus.Entry
	for i := 1; i < 4; i++ {
		entries := collect(t, c.nodes[i], k, 15*time.Second)
		if ref == nil {
			ref = entries
		} else {
			for j := range ref {
				if string(ref[j].Payload) != string(entries[j].Payload) {
					t.Fatalf("divergence at %d", j)
				}
			}
		}
	}
}

// TestDeliveryDespiteMinorityPartition checks that f isolated replicas do
// not block the quorum.
func TestDeliveryDespiteMinorityPartition(t *testing.T) {
	c := newCluster(t, 4, time.Second)
	c.net.Isolate(c.ids[3], true) // one replica (not the primary) offline
	_ = c.nodes[0].Submit([]byte("x"))
	for i := 0; i < 3; i++ {
		entries := collect(t, c.nodes[i], 1, 5*time.Second)
		if string(entries[0].Payload) != "x" {
			t.Fatalf("node %d delivered %q", i, entries[0].Payload)
		}
	}
}

func TestStopClosesStream(t *testing.T) {
	c := newCluster(t, 4, time.Second)
	node := c.nodes[0]
	node.Stop()
	select {
	case _, ok := <-node.Committed():
		if ok {
			t.Fatal("unexpected entry after stop")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stream did not close")
	}
}
