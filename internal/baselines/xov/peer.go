package xov

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"parblockchain/internal/contract"
	"parblockchain/internal/cryptoutil"
	"parblockchain/internal/eventq"
	"parblockchain/internal/execution"
	"parblockchain/internal/ledger"
	"parblockchain/internal/state"
	"parblockchain/internal/transport"
	"parblockchain/internal/types"
)

// PeerConfig parameterizes one XOV peer.
type PeerConfig struct {
	// ID is this peer's identity.
	ID types.NodeID
	// Endpoint is the peer's transport attachment.
	Endpoint transport.Endpoint
	// Registry holds the contracts this peer endorses for (empty for
	// non-endorsing peers, which only validate).
	Registry *contract.Registry
	// AgentsOf maps applications to their endorser sets.
	AgentsOf map[types.AppID][]types.NodeID
	// Tau is the per-application endorsement policy size; missing
	// entries default to 1.
	Tau map[types.AppID]int
	// OrderQuorum is the number of matching block announcements needed.
	OrderQuorum int
	// EndorseWorkers sizes the endorsement pool. The default 1 matches
	// the paper's model of one execution unit per endorser ("XOV can
	// execute 3 — the number of applications — transactions in
	// parallel").
	EndorseWorkers int
	// Store is the peer's committed, versioned state.
	Store *state.KVStore
	// Ledger is the peer's block ledger.
	Ledger *ledger.Ledger
	// Signer signs endorsements.
	Signer cryptoutil.Signer
	// Verifier checks block and endorsement signatures when VerifySigs.
	Verifier   cryptoutil.Verifier
	VerifySigs bool
	// OnCommit observes every validated block with its final results.
	OnCommit execution.CommitHook
	// Logf receives diagnostics; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// Peer is one XOV peer: an endorser for the applications whose contracts
// it holds, and a validator for every block. Validation is sequential and
// applies Fabric's MVCC read-set check, aborting stale transactions.
type Peer struct {
	cfg        PeerConfig
	mailbox    *eventq.Queue[transport.Message]
	endorseQ   *eventq.Queue[endorseJob]
	blocks     map[uint64]*peerBlock
	halted     bool
	validated  atomic.Uint64
	aborted    atomic.Uint64
	endorsed   atomic.Uint64
	stopOnce   sync.Once
	wg         sync.WaitGroup
	prevDigest types.Hash
}

type endorseJob struct {
	from types.NodeID
	tx   *types.Transaction
}

type peerBlock struct {
	votes       map[types.NodeID]types.Hash
	digestCount map[types.Hash]int
	proposals   map[types.Hash]*BlockMsg
	msg         *BlockMsg
	valid       bool
}

// NewPeer creates an XOV peer. Call Start before use.
func NewPeer(cfg PeerConfig) *Peer {
	if cfg.OrderQuorum <= 0 {
		cfg.OrderQuorum = 1
	}
	if cfg.EndorseWorkers <= 0 {
		cfg.EndorseWorkers = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return &Peer{
		cfg:      cfg,
		mailbox:  eventq.New[transport.Message](),
		endorseQ: eventq.New[endorseJob](),
		blocks:   make(map[uint64]*peerBlock),
	}
}

// Start launches the receive, validation, and endorsement loops.
func (p *Peer) Start() {
	p.wg.Add(2 + p.cfg.EndorseWorkers)
	go p.recvLoop()
	go p.runLoop()
	for i := 0; i < p.cfg.EndorseWorkers; i++ {
		go p.endorseLoop()
	}
}

// Stop shuts the peer down.
func (p *Peer) Stop() {
	p.stopOnce.Do(func() {
		p.cfg.Endpoint.Close()
		p.mailbox.Close()
		p.endorseQ.Close()
	})
	p.wg.Wait()
}

// Validated returns the number of transactions that passed validation.
func (p *Peer) Validated() uint64 { return p.validated.Load() }

// Aborted returns the number of transactions aborted at validation.
func (p *Peer) Aborted() uint64 { return p.aborted.Load() }

// Endorsed returns the number of endorsements produced.
func (p *Peer) Endorsed() uint64 { return p.endorsed.Load() }

func (p *Peer) recvLoop() {
	defer p.wg.Done()
	for msg := range p.cfg.Endpoint.Recv() {
		switch m := msg.Payload.(type) {
		case *EndorseRequestMsg:
			if m.Tx != nil {
				p.endorseQ.Push(endorseJob{from: msg.From, tx: m.Tx})
			}
		default:
			p.mailbox.Push(msg)
		}
	}
}

// endorseLoop simulates transactions against committed state, recording
// read versions — the "execute" phase of execute-order-validate.
func (p *Peer) endorseLoop() {
	defer p.wg.Done()
	for {
		job, ok := p.endorseQ.Pop()
		if !ok {
			return
		}
		p.handleEndorse(job.from, job.tx)
	}
}

// recordingView captures the versions of every key a simulation reads.
type recordingView struct {
	store *state.KVStore
	mu    sync.Mutex
	reads map[types.Key]uint64
}

func (v *recordingView) Get(key types.Key) ([]byte, bool) {
	val, ver, ok := v.store.GetVersion(key)
	v.mu.Lock()
	if _, seen := v.reads[key]; !seen {
		v.reads[key] = ver
	}
	v.mu.Unlock()
	if !ok {
		return nil, false
	}
	return val, true
}

func (p *Peer) handleEndorse(from types.NodeID, tx *types.Transaction) {
	c, ok := p.cfg.Registry.Lookup(tx.App)
	if !ok {
		return // not an endorser for this application
	}
	view := &recordingView{store: p.cfg.Store, reads: make(map[types.Key]uint64, 4)}
	writes, err := c.Execute(view, tx.Op)
	resp := &EndorsementMsg{TxID: tx.ID, Endorser: p.cfg.ID}
	if err != nil {
		resp.Aborted = true
		resp.AbortReason = err.Error()
	} else {
		resp.Writes = writes
	}
	resp.ReadVers = make([]KeyVer, 0, len(view.reads))
	// Deterministic order: declared read set order, which both endorsers
	// share; undeclared reads cannot occur per the contract interface.
	for _, key := range tx.Op.Reads {
		if ver, seen := view.reads[key]; seen {
			resp.ReadVers = append(resp.ReadVers, KeyVer{Key: key, Ver: ver})
		}
	}
	digest := resp.SignedDigest()
	resp.Sig = p.cfg.Signer.Sign(digest[:])
	p.endorsed.Add(1)
	if err := p.cfg.Endpoint.Send(from, resp); err != nil {
		p.cfg.Logf("xov peer %s: endorsement reply to %s: %v", p.cfg.ID, from, err)
	}
}

// runLoop validates announced blocks in order.
func (p *Peer) runLoop() {
	defer p.wg.Done()
	for {
		msg, ok := p.mailbox.Pop()
		if !ok {
			return
		}
		if p.halted {
			continue
		}
		m, ok := msg.Payload.(*BlockMsg)
		if !ok || m.Orderer != msg.From {
			continue
		}
		p.handleBlock(msg.From, m)
	}
}

func (p *Peer) handleBlock(from types.NodeID, m *BlockMsg) {
	if m.Number < p.cfg.Ledger.Height() {
		return
	}
	if p.cfg.VerifySigs {
		digest := m.Digest()
		if err := p.cfg.Verifier.Verify(string(from), digest[:], m.Sig); err != nil {
			p.cfg.Logf("xov peer %s: bad block signature from %s: %v", p.cfg.ID, from, err)
			return
		}
	}
	pb, ok := p.blocks[m.Number]
	if !ok {
		pb = &peerBlock{
			votes:       make(map[types.NodeID]types.Hash),
			digestCount: make(map[types.Hash]int),
			proposals:   make(map[types.Hash]*BlockMsg),
		}
		p.blocks[m.Number] = pb
	}
	if pb.valid {
		return
	}
	if _, dup := pb.votes[from]; dup {
		return
	}
	digest := m.Digest()
	pb.votes[from] = digest
	pb.digestCount[digest]++
	if _, have := pb.proposals[digest]; !have {
		pb.proposals[digest] = m
	}
	if pb.digestCount[digest] >= p.cfg.OrderQuorum {
		pb.valid = true
		pb.msg = pb.proposals[digest]
		pb.proposals = nil
		p.validateReady()
	}
}

func (p *Peer) validateReady() {
	for {
		next := p.cfg.Ledger.Height()
		pb, ok := p.blocks[next]
		if !ok || !pb.valid {
			return
		}
		if pb.msg.PrevHash != p.prevDigest {
			p.cfg.Logf("xov peer %s: block %d does not extend validation chain; halting", p.cfg.ID, next)
			p.halted = true
			return
		}
		p.validateBlock(pb.msg)
		p.prevDigest = pb.msg.Digest()
		delete(p.blocks, next)
	}
}

// validateBlock performs Fabric-style sequential validation: endorsement
// policy check plus the MVCC read-version check, applying valid writes
// and aborting stale transactions.
func (p *Peer) validateBlock(m *BlockMsg) {
	txns := make([]*types.Transaction, 0, len(m.Items))
	results := make([]types.TxResult, 0, len(m.Items))
	for _, item := range m.Items {
		etx, err := UnmarshalEndorsedTx(item)
		if err != nil {
			p.cfg.Logf("xov peer %s: malformed endorsed tx in block %d: %v", p.cfg.ID, m.Number, err)
			continue
		}
		idx := len(txns)
		txns = append(txns, etx.Tx)
		result := types.TxResult{TxID: etx.Tx.ID, Index: idx}
		switch {
		case !p.policySatisfied(etx):
			result.Aborted = true
			result.AbortReason = "endorsement policy unsatisfied"
		case etx.SimAborted:
			result.Aborted = true
			result.AbortReason = etx.AbortReason
		case !p.mvccCheck(etx):
			result.Aborted = true
			result.AbortReason = AbortMVCCConflict
		default:
			// Ownership of the endorsed write set transfers to the store
			// (zero-copy): the slices were decoded from the wire (TCP) or
			// built once by the endorser (in-process) and are immutable
			// from here on.
			p.cfg.Store.Apply(etx.Writes)
			result.Writes = etx.Writes
		}
		if result.Aborted {
			p.aborted.Add(1)
		} else {
			p.validated.Add(1)
		}
		results = append(results, result)
	}
	block := types.NewBlock(m.Number, p.cfg.Ledger.LastHash(), txns)
	if err := p.cfg.Ledger.Append(ledger.Entry{Block: block, Results: results}); err != nil {
		p.cfg.Logf("xov peer %s: ledger append: %v; halting", p.cfg.ID, err)
		p.halted = true
		return
	}
	if p.cfg.OnCommit != nil {
		p.cfg.OnCommit(block, results)
	}
}

// policySatisfied checks tau(A) matching endorsements by authorized
// endorsers. Signatures are verified when VerifySigs is set.
func (p *Peer) policySatisfied(etx *EndorsedTx) bool {
	app := etx.Tx.App
	need := 1
	if t, ok := p.cfg.Tau[app]; ok && t > 0 {
		need = t
	}
	if len(etx.Endorsers) < need {
		return false
	}
	seen := make(map[types.NodeID]bool, len(etx.Endorsers))
	count := 0
	for i, endorser := range etx.Endorsers {
		if seen[endorser] || !p.isAgentOf(app, endorser) {
			continue
		}
		seen[endorser] = true
		if p.cfg.VerifySigs {
			em := &EndorsementMsg{
				TxID:        etx.Tx.ID,
				ReadVers:    etx.ReadVers,
				Writes:      etx.Writes,
				Aborted:     etx.SimAborted,
				AbortReason: etx.AbortReason,
				Endorser:    endorser,
			}
			digest := em.SignedDigest()
			if err := p.cfg.Verifier.Verify(string(endorser), digest[:], etx.Sigs[i]); err != nil {
				continue
			}
		}
		count++
	}
	return count >= need
}

func (p *Peer) isAgentOf(app types.AppID, node types.NodeID) bool {
	for _, agent := range p.cfg.AgentsOf[app] {
		if agent == node {
			return true
		}
	}
	return false
}

// mvccCheck verifies every read version is still current — Fabric's
// validation rule. A single stale read aborts the transaction.
func (p *Peer) mvccCheck(etx *EndorsedTx) bool {
	for _, rv := range etx.ReadVers {
		if p.cfg.Store.Version(rv.Key) != rv.Ver {
			return false
		}
	}
	return true
}

// String identifies the peer in logs.
func (p *Peer) String() string { return fmt.Sprintf("xovpeer(%s)", p.cfg.ID) }
