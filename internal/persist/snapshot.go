package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"parblockchain/internal/state"
	"parblockchain/internal/types"
)

// A snapshot file freezes the full sharded KVStore at one block
// boundary:
//
//	magic (8)  | "PBSNAP01"
//	u32        | manifest length
//	manifest   | versioned Manifest encoding (own codec, fuzzed)
//	payload    | per shard: u64 record count, then records
//	           |   record: Str key, presence byte, Blob value
//	u32        | CRC-32C over everything above
//
// The value slices written are shared with the live store (the
// zero-copy state contract); the reader copies them out of the file
// buffer, so a restored store owns its values. Snapshots are written to
// a temp file, fsynced, and renamed into place, so a crash mid-write
// leaves the previous snapshot intact.

var snapMagic = [8]byte{'P', 'B', 'S', 'N', 'A', 'P', '0', '1'}

// manifestVersion is the snapshot manifest's on-disk version byte.
const manifestVersion = 1

// castagnoli is the CRC-32C table shared by snapshot files and WAL
// record frames.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Manifest describes one snapshot: the block boundary it freezes, the
// chain anchor the restored ledger resumes from, and the state hash the
// restored store must reproduce.
type Manifest struct {
	// Height is the number of blocks folded into the snapshot; the next
	// block to finalize after restoring carries this number.
	Height uint64
	// LastHash is the hash of block Height-1 (the ledger tip at the
	// boundary; the zero hash for a genesis snapshot).
	LastHash types.Hash
	// StateHash is the store's incremental XOR-of-SHA256 hash over the
	// snapshot content.
	StateHash types.Hash
	// Shards is the store's shard count at write time.
	Shards uint64
	// Records is the total number of live records across all shards.
	Records uint64
}

// Marshal encodes the manifest with its versioned codec.
func (m *Manifest) Marshal() []byte {
	w := types.AcquireWriter()
	defer types.ReleaseWriter(w)
	w.Byte(manifestVersion)
	w.U64(m.Height)
	w.WriteHash(m.LastHash)
	w.WriteHash(m.StateHash)
	w.U64(m.Shards)
	w.U64(m.Records)
	return w.CloneBytes()
}

// UnmarshalManifest decodes a manifest encoded by Marshal. Malformed
// input returns an error, never panics.
func UnmarshalManifest(b []byte) (*Manifest, error) {
	r := types.NewByteReader(b)
	if v := r.Byte(); r.Err() == nil && v != manifestVersion {
		return nil, fmt.Errorf("persist: unsupported snapshot manifest version %d", v)
	}
	m := &Manifest{Height: r.U64()}
	m.LastHash = r.ReadHash()
	m.StateHash = r.ReadHash()
	m.Shards = r.U64()
	m.Records = r.U64()
	if err := types.FinishDecode(r, "snapshot manifest"); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return m, nil
}

// crcWriter tees writes into a CRC-32C running sum, accumulating the
// first error so the write path can check once at the end.
type crcWriter struct {
	w   *bufio.Writer
	crc hash.Hash32
	err error
}

func newCRCWriter(f *os.File) *crcWriter {
	return &crcWriter{w: bufio.NewWriterSize(f, 1<<20), crc: crc32.New(castagnoli)}
}

func (cw *crcWriter) bytes(b []byte) {
	if cw.err != nil {
		return
	}
	if _, err := cw.w.Write(b); err != nil {
		cw.err = err
		return
	}
	cw.crc.Write(b)
}

func (cw *crcWriter) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	cw.bytes(b[:])
}

func (cw *crcWriter) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	cw.bytes(b[:])
}

func (cw *crcWriter) byte(b byte) { cw.bytes([]byte{b}) }

func (cw *crcWriter) str(s string) {
	cw.u64(uint64(len(s)))
	if cw.err == nil {
		if _, err := cw.w.WriteString(s); err != nil {
			cw.err = err
			return
		}
		cw.crc.Write([]byte(s))
	}
}

// snapshotWorkers bounds the shard-encoding concurrency of
// writeSnapshotFile. A var so the snapshot benchmark can pin it to 1 for
// the serial baseline row.
var snapshotWorkers = defaultSnapshotWorkers()

func defaultSnapshotWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8 // encoding saturates well before the file write does
	}
	if n < 1 {
		n = 1
	}
	return n
}

// encodeShard serializes one shard's section of the snapshot payload
// (u64 record count, then length-prefixed records) into a byte slice.
func encodeShard(kvs []types.KV) []byte {
	size := 8
	for _, kv := range kvs {
		size += 8 + len(kv.Key) + 1
		if kv.Val != nil {
			size += 8 + len(kv.Val)
		}
	}
	buf := make([]byte, 0, size)
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	u64(uint64(len(kvs)))
	for _, kv := range kvs {
		u64(uint64(len(kv.Key)))
		buf = append(buf, kv.Key...)
		if kv.Val == nil {
			buf = append(buf, 0)
		} else {
			buf = append(buf, 1)
			u64(uint64(len(kv.Val)))
			buf = append(buf, kv.Val...)
		}
	}
	return buf
}

// writeSnapshotFile writes (atomically, via temp file + rename) the
// snapshot of the given shards at path. The per-shard payload sections
// are encoded concurrently by a bounded worker pool — serialization is
// the CPU-bound part of a snapshot, and the shards are independent — and
// streamed to the file in shard order as they become ready, so the
// on-disk format is byte-identical to a serial write (one CRC-32C over
// the whole file). The encoders run at most 2*workers sections ahead of
// the writer (each written section is released immediately), so peak
// extra memory is a few encoded sections, never the whole store.
func writeSnapshotFile(path string, man *Manifest, shards [][]types.KV) error {
	workers := snapshotWorkers
	if workers > len(shards) {
		workers = len(shards)
	}

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	cw := newCRCWriter(f)
	cw.bytes(snapMagic[:])
	mb := man.Marshal()
	cw.u32(uint32(len(mb)))
	cw.bytes(mb)
	if workers <= 1 {
		for _, kvs := range shards {
			cw.bytes(encodeShard(kvs))
		}
	} else {
		encoded := make([][]byte, len(shards))
		ready := make([]chan struct{}, len(shards))
		for i := range ready {
			ready[i] = make(chan struct{})
		}
		// ahead bounds how many encoded-but-unwritten sections exist; the
		// writer releases one slot per section it flushes. The index
		// channel is FIFO, so the writer's next section is always among
		// the issued ones and some worker reaches it.
		ahead := make(chan struct{}, 2*workers)
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					encoded[i] = encodeShard(shards[i])
					close(ready[i])
				}
			}()
		}
		go func() {
			for i := range shards {
				ahead <- struct{}{}
				next <- i
			}
			close(next)
		}()
		for i := range shards {
			<-ready[i]
			cw.bytes(encoded[i])
			encoded[i] = nil
			<-ahead
		}
		wg.Wait()
	}
	if cw.err == nil {
		sum := cw.crc.Sum32()
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], sum)
		_, cw.err = cw.w.Write(b[:])
	}
	if cw.err == nil {
		cw.err = cw.w.Flush()
	}
	if cw.err == nil {
		cw.err = f.Sync()
	}
	if err := f.Close(); cw.err == nil {
		cw.err = err
	}
	if cw.err != nil {
		return fmt.Errorf("persist: writing snapshot %s: %w", path, cw.err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// readSnapshotFile loads a snapshot into a fresh KVStore and verifies
// the checksum, the record count, and the incremental state hash.
func readSnapshotFile(path string) (*Manifest, *state.KVStore, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	man, store, err := DecodeSnapshot(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: snapshot %s: %w", path, err)
	}
	return man, store, nil
}

// DecodeSnapshot decodes and verifies a full snapshot file image —
// checksum, magic, manifest, shard payloads, record count, and the
// incremental state hash — into a fresh KVStore. State sync uses it to
// validate a snapshot reassembled from peer-served chunks before
// adopting it; recovery uses it via readSnapshotFile. Malformed input
// returns an error, never panics.
func DecodeSnapshot(raw []byte) (*Manifest, *state.KVStore, error) {
	store := state.NewKVStore()
	man, err := decodeSnapshotInto(raw, store)
	if err != nil {
		return nil, nil, err
	}
	return man, store, nil
}

// decodeSnapshotInto is DecodeSnapshot applying into a caller-supplied
// empty store, so recovery can restore a full-format snapshot into
// whichever backend the node is configured with.
func decodeSnapshotInto(raw []byte, store state.Backend) (*Manifest, error) {
	if len(raw) < len(snapMagic)+4+4 {
		return nil, fmt.Errorf("snapshot truncated")
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(tail) {
		return nil, fmt.Errorf("snapshot checksum mismatch")
	}
	if [8]byte(body[:8]) != snapMagic {
		return nil, fmt.Errorf("snapshot has bad magic")
	}
	body = body[8:]
	if len(body) < 4 {
		return nil, fmt.Errorf("snapshot truncated")
	}
	mlen := int(binary.BigEndian.Uint32(body))
	body = body[4:]
	if mlen > len(body) {
		return nil, fmt.Errorf("snapshot truncated")
	}
	man, err := UnmarshalManifest(body[:mlen])
	if err != nil {
		return nil, err
	}
	r := types.NewByteReader(body[mlen:])
	var total uint64
	for s := uint64(0); s < man.Shards && r.Err() == nil; s++ {
		n := r.U64()
		if r.Err() != nil || n > uint64(r.Remaining())/minDeltaKVSize {
			r.Fail()
			break
		}
		if n == 0 {
			continue
		}
		batch := make([]types.KV, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			kv := types.KV{Key: r.Str()}
			if r.Byte() == 1 {
				kv.Val = r.Blob()
				if kv.Val == nil {
					kv.Val = []byte{}
				}
			} else {
				// A nil value in a snapshot would be a deletion of a key
				// that was never written — snapshots hold live records
				// only, so presence is mandatory.
				r.Fail()
			}
			batch = append(batch, kv)
		}
		if r.Err() == nil {
			store.Apply(batch)
			total += n
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("decoding snapshot: %w", err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("snapshot has %d trailing bytes", r.Remaining())
	}
	if total != man.Records {
		return nil, fmt.Errorf("snapshot holds %d records, manifest says %d",
			total, man.Records)
	}
	if got := store.Hash(); got != man.StateHash {
		return nil, fmt.Errorf("snapshot state hash mismatch: got %s want %s",
			got, man.StateHash)
	}
	return man, nil
}

// syncDir fsyncs a directory so a just-created or just-renamed file's
// directory entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
