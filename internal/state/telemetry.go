package state

import "parblockchain/internal/telemetry"

// RegisterTelemetry exposes the tier counters and occupancy gauges on
// reg. Counters sample atomics; the occupancy gauges take the shard read
// locks exactly as Stats does, so a scrape is safe (and cheap) at any
// point of a live store.
func (s *TieredStore) RegisterTelemetry(reg *telemetry.Registry, labels telemetry.Labels) {
	if reg == nil {
		return
	}
	reg.CounterFunc("parblockchain_state_cold_reads_total",
		"Gets and warms served by a cold-tier pread.", labels, s.coldReads.Load)
	reg.CounterFunc("parblockchain_state_cold_bytes_read_total",
		"Value bytes pread from the cold tier.", labels, s.coldBytesRead.Load)
	reg.CounterFunc("parblockchain_state_evictions_total",
		"Hot-cache entries evicted to the cold tier.", labels, s.evictions.Load)
	reg.CounterFunc("parblockchain_state_flushed_bytes_total",
		"Dirty value bytes flushed cold by eviction.", labels, s.flushedBytes.Load)
	reg.GaugeFunc("parblockchain_state_hot_keys",
		"Current hot-cache entries.", labels,
		func() float64 { return float64(s.Stats().HotKeys) })
	reg.GaugeFunc("parblockchain_state_cold_keys",
		"Current cold index entries (including stale overlaps).", labels,
		func() float64 { return float64(s.Stats().ColdKeys) })
	reg.GaugeFunc("parblockchain_state_hot_bytes",
		"Current charged hot-cache bytes.", labels,
		func() float64 { return float64(s.Stats().HotBytes) })
}
