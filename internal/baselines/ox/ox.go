// Package ox implements the sequential order-execute baseline (the
// paper's "OX" paradigm, as in Tendermint or Multichain): orderers agree
// on a total order and cut blocks exactly as in ParBlockchain — but
// without dependency graphs — and then *every* peer executes every
// transaction of each block sequentially against its local state. Every
// peer therefore installs every smart contract, which is precisely the
// confidentiality drawback the paper attributes to this paradigm.
package ox

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"parblockchain/internal/contract"
	"parblockchain/internal/cryptoutil"
	"parblockchain/internal/eventq"
	"parblockchain/internal/execution"
	"parblockchain/internal/ledger"
	"parblockchain/internal/state"
	"parblockchain/internal/transport"
	"parblockchain/internal/types"
)

// PeerConfig parameterizes one OX peer.
type PeerConfig struct {
	// ID is this peer's identity.
	ID types.NodeID
	// Endpoint is the peer's transport attachment.
	Endpoint transport.Endpoint
	// Registry holds every application's contract: OX peers execute all
	// transactions.
	Registry *contract.Registry
	// OrderQuorum is the number of matching NEWBLOCK messages required.
	OrderQuorum int
	// Store is the peer's committed state.
	Store *state.KVStore
	// Ledger is the peer's block ledger.
	Ledger *ledger.Ledger
	// Verifier checks NEWBLOCK signatures when VerifySigs is set.
	Verifier   cryptoutil.Verifier
	VerifySigs bool
	// OnCommit observes finalized blocks.
	OnCommit execution.CommitHook
	// Logf receives diagnostics; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// Peer is one OX peer: it validates announced blocks against an orderer
// quorum and executes their transactions in order, sequentially, on a
// single goroutine — the paradigm's defining bottleneck.
type Peer struct {
	cfg     PeerConfig
	mailbox *eventq.Queue[transport.Message]

	// State owned by the run goroutine.
	blocks map[uint64]*peerBlock
	halted bool

	executed atomic.Uint64
	aborted  atomic.Uint64

	stopOnce sync.Once
	wg       sync.WaitGroup
}

type peerBlock struct {
	votes       map[types.NodeID]types.Hash
	digestCount map[types.Hash]int
	proposals   map[types.Hash]*types.NewBlockMsg
	msg         *types.NewBlockMsg
	valid       bool
}

// NewPeer creates an OX peer. Call Start before use.
func NewPeer(cfg PeerConfig) *Peer {
	if cfg.OrderQuorum <= 0 {
		cfg.OrderQuorum = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return &Peer{
		cfg:     cfg,
		mailbox: eventq.New[transport.Message](),
		blocks:  make(map[uint64]*peerBlock),
	}
}

// Start launches the receive and execution loops.
func (p *Peer) Start() {
	p.wg.Add(2)
	go p.recvLoop()
	go p.runLoop()
}

// Stop shuts the peer down.
func (p *Peer) Stop() {
	p.stopOnce.Do(func() {
		p.cfg.Endpoint.Close()
		p.mailbox.Close()
	})
	p.wg.Wait()
}

// Executed returns the number of transactions executed.
func (p *Peer) Executed() uint64 { return p.executed.Load() }

// Aborted returns the number of aborted transactions.
func (p *Peer) Aborted() uint64 { return p.aborted.Load() }

func (p *Peer) recvLoop() {
	defer p.wg.Done()
	for msg := range p.cfg.Endpoint.Recv() {
		p.mailbox.Push(msg)
	}
}

func (p *Peer) runLoop() {
	defer p.wg.Done()
	for {
		msg, ok := p.mailbox.Pop()
		if !ok {
			return
		}
		if p.halted {
			continue
		}
		m, ok := msg.Payload.(*types.NewBlockMsg)
		if !ok || m.Block == nil || m.Orderer != msg.From {
			continue
		}
		p.handleNewBlock(msg.From, m)
	}
}

func (p *Peer) handleNewBlock(from types.NodeID, m *types.NewBlockMsg) {
	num := m.Block.Header.Number
	if num < p.cfg.Ledger.Height() {
		return
	}
	if p.cfg.VerifySigs {
		digest := m.Digest()
		if err := p.cfg.Verifier.Verify(string(from), digest[:], m.Sig); err != nil {
			p.cfg.Logf("ox peer %s: bad NEWBLOCK signature from %s: %v", p.cfg.ID, from, err)
			return
		}
	}
	pb, ok := p.blocks[num]
	if !ok {
		pb = &peerBlock{
			votes:       make(map[types.NodeID]types.Hash),
			digestCount: make(map[types.Hash]int),
			proposals:   make(map[types.Hash]*types.NewBlockMsg),
		}
		p.blocks[num] = pb
	}
	if pb.valid {
		return
	}
	if _, dup := pb.votes[from]; dup {
		return
	}
	digest := m.Digest()
	pb.votes[from] = digest
	pb.digestCount[digest]++
	if _, have := pb.proposals[digest]; !have {
		pb.proposals[digest] = m
	}
	if pb.digestCount[digest] >= p.cfg.OrderQuorum {
		proposal := pb.proposals[digest]
		if !proposal.Block.VerifyTxRoot() {
			p.cfg.Logf("ox peer %s: block %d fails tx root", p.cfg.ID, num)
			return
		}
		pb.valid = true
		pb.msg = proposal
		pb.proposals = nil
		p.executeReady()
	}
}

// executeReady executes validated blocks in chain order.
func (p *Peer) executeReady() {
	for {
		next := p.cfg.Ledger.Height()
		pb, ok := p.blocks[next]
		if !ok || !pb.valid {
			return
		}
		if pb.msg.Block.Header.PrevHash != p.cfg.Ledger.LastHash() {
			p.cfg.Logf("ox peer %s: block %d does not extend local chain; halting", p.cfg.ID, next)
			p.halted = true
			return
		}
		p.executeBlock(pb.msg.Block)
		delete(p.blocks, next)
	}
}

// executeBlock runs the block's transactions one after another — the OX
// paradigm's sequential execution on every node. Write sets are freshly
// allocated by the contracts and handed to the overlay and then the store
// by reference (the zero-copy ownership transfer at the commit boundary).
func (p *Peer) executeBlock(block *types.Block) {
	overlay := state.NewBlockOverlay(p.cfg.Store)
	results := make([]types.TxResult, len(block.Txns))
	for i, tx := range block.Txns {
		writes, err := p.cfg.Registry.Execute(tx.App, overlay, tx.Op)
		results[i] = types.TxResult{TxID: tx.ID, Index: i}
		if err != nil {
			results[i].Aborted = true
			results[i].AbortReason = err.Error()
			p.aborted.Add(1)
		} else {
			results[i].Writes = writes
			overlay.Record(i, writes)
		}
		p.executed.Add(1)
	}
	p.cfg.Store.Apply(overlay.Final())
	if err := p.cfg.Ledger.Append(ledger.Entry{Block: block, Results: results}); err != nil {
		p.cfg.Logf("ox peer %s: ledger append: %v; halting", p.cfg.ID, err)
		p.halted = true
		return
	}
	if p.cfg.OnCommit != nil {
		p.cfg.OnCommit(block, results)
	}
}

// String identifies the peer in logs.
func (p *Peer) String() string { return fmt.Sprintf("oxpeer(%s)", p.cfg.ID) }
