package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openLog opens a RecordLog in dir collecting every replayed record.
func openLog(t *testing.T, dir string, fsync FsyncPolicy) (*RecordLog, [][]byte) {
	t.Helper()
	var replayed [][]byte
	l, err := OpenRecordLog(RecordLogConfig{Dir: dir, Prefix: "t", Fsync: fsync},
		func(idx uint64, body []byte) error {
			if int(idx) != len(replayed) {
				t.Fatalf("replay index %d, want %d", idx, len(replayed))
			}
			replayed = append(replayed, append([]byte{}, body...))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return l, replayed
}

func appendN(t *testing.T, l *RecordLog, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		idx, err := l.Append([]byte(fmt.Sprintf("rec-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if idx != uint64(i) {
			t.Fatalf("Append index %d, want %d", idx, i)
		}
	}
}

func TestRecordLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, replayed := openLog(t, dir, FsyncGroup)
	if len(replayed) != 0 {
		t.Fatalf("fresh log replayed %d records", len(replayed))
	}
	appendN(t, l, 0, 5)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, replayed := openLog(t, dir, FsyncGroup)
	defer l2.Close()
	if len(replayed) != 5 || string(replayed[3]) != "rec-003" {
		t.Fatalf("replayed %d records, [3]=%q", len(replayed), replayed[3])
	}
	if l2.NextIndex() != 5 {
		t.Fatalf("NextIndex = %d, want 5", l2.NextIndex())
	}
	if s := l2.Stats(); s.Replayed != 5 || s.TailTruncated {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRecordLogRollRangePrune(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, FsyncGroup)
	defer l.Close()
	appendN(t, l, 0, 3)
	if err := l.Roll(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 3)
	if err := l.Roll(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 6, 2)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	segs := l.Segments()
	if len(segs) != 3 || segs[0] != 0 || segs[1] != 3 || segs[2] != 6 {
		t.Fatalf("segments = %v", segs)
	}
	// Range from the middle of a sealed segment.
	var got []string
	if err := l.Range(4, func(idx uint64, body []byte) error {
		got = append(got, fmt.Sprintf("%d:%s", idx, body))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := "4:rec-004 5:rec-005 6:rec-006 7:rec-007"
	if strings.Join(got, " ") != want {
		t.Fatalf("Range = %q, want %q", strings.Join(got, " "), want)
	}
	// Prune below record 3: the first segment goes, the rest stay.
	if err := l.PruneTo(3); err != nil {
		t.Fatal(err)
	}
	segs = l.Segments()
	if len(segs) != 2 || segs[0] != 3 {
		t.Fatalf("segments after prune = %v", segs)
	}
	if err := l.Range(0, func(idx uint64, body []byte) error {
		if idx < 3 {
			return fmt.Errorf("pruned record %d resurfaced", idx)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordLogTruncateFrom(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, FsyncGroup)
	appendN(t, l, 0, 3)
	if err := l.Roll(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 4)
	// Truncate inside the active segment: records 5.. go.
	if err := l.TruncateFrom(5); err != nil {
		t.Fatal(err)
	}
	if l.NextIndex() != 5 {
		t.Fatalf("NextIndex = %d, want 5", l.NextIndex())
	}
	appendN(t, l, 5, 1)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, replayed := openLog(t, dir, FsyncGroup)
	defer l2.Close()
	if len(replayed) != 6 || string(replayed[5]) != "rec-005" {
		t.Fatalf("replayed %d records, [5]=%q", len(replayed), replayed[5])
	}
}

// TestRecordLogTornTailRecovered mirrors the executor WAL contract: a
// torn frame at the newest segment's tail (the expected crash shape) is
// truncated on open, and the log continues from the durable prefix.
func TestRecordLogTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, FsyncGroup)
	appendN(t, l, 0, 4)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop the last 3 bytes of the active segment, leaving
	// a frame whose body is shorter than its length prefix promises.
	path := filepath.Join(dir, segmentFileName("t", 0))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	l2, replayed := openLog(t, dir, FsyncGroup)
	if len(replayed) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(replayed))
	}
	if s := l2.Stats(); !s.TailTruncated {
		t.Fatal("TailTruncated not reported")
	}
	// The log must be appendable right where the tear was cut.
	appendN(t, l2, 3, 1)
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, replayed := openLog(t, dir, FsyncGroup)
	defer l3.Close()
	if len(replayed) != 4 || string(replayed[3]) != "rec-003" {
		t.Fatalf("after repair: replayed %d, [3]=%q", len(replayed), replayed[3])
	}
}

// TestRecordLogMidLogCorruptionFatal: a bad frame anywhere but the newest
// segment's tail is disk corruption, not a crash artifact — the open must
// fail loudly instead of silently dropping history.
func TestRecordLogMidLogCorruptionFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, FsyncGroup)
	appendN(t, l, 0, 3)
	if err := l.Roll(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 2)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte in the sealed first segment: its CRC no longer
	// matches, and the segment is not the newest.
	path := filepath.Join(dir, segmentFileName("t", 0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRecordLog(RecordLogConfig{Dir: dir, Prefix: "t"},
		func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("open succeeded over mid-log corruption")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestRecordLogDoubleOpenRejected: the directory flock keeps a second
// process (or a leaked handle) from mounting the same log concurrently.
func TestRecordLogDoubleOpenRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, FsyncGroup)
	defer l.Close()
	if _, err := OpenRecordLog(RecordLogConfig{Dir: dir, Prefix: "t"},
		func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("second open on a locked directory succeeded")
	}
}

// TestRecordLogCrashDropsUnsynced: Crash discards appends made after the
// last sync — the page-cache bytes a power loss would eat — while the
// synced prefix survives.
func TestRecordLogCrashDropsUnsynced(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, FsyncGroup)
	appendN(t, l, 0, 2)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2, 3) // never synced
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	l2, replayed := openLog(t, dir, FsyncGroup)
	defer l2.Close()
	if len(replayed) != 2 {
		t.Fatalf("replayed %d records after crash, want 2", len(replayed))
	}
	if l2.NextIndex() != 2 {
		t.Fatalf("NextIndex = %d, want 2", l2.NextIndex())
	}
}

// TestRecordLogFsyncAlwaysSurvivesCrash: under FsyncAlways every append
// is durable on return, so Crash loses nothing.
func TestRecordLogFsyncAlwaysSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, FsyncAlways)
	appendN(t, l, 0, 3)
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	l2, replayed := openLog(t, dir, FsyncAlways)
	defer l2.Close()
	if len(replayed) != 3 {
		t.Fatalf("replayed %d records, want 3", len(replayed))
	}
}
